"""Tests for Union-Find, plans, the memo table and the counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitmapset as bms
from repro.core.counters import OptimizerStats, Stopwatch
from repro.core.memo import MemoTable
from repro.core.plan import JoinMethod, join_plan, scan_plan
from repro.core.unionfind import UnionFind


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(4)
        assert uf.n_sets == 4
        assert all(uf.find(i) == i for i in range(4))
        assert uf.sets() == [bms.bit(i) for i in range(4)]

    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            UnionFind(0)

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)
        assert uf.n_sets == 3
        assert uf.set_size(2) == 3
        assert uf.set_mask(1) == bms.from_indices([0, 1, 2])

    def test_sets_sorted_by_lowest_member(self):
        uf = UnionFind(6)
        uf.union(4, 5)
        uf.union(1, 2)
        masks = uf.sets()
        lowest = [bms.lowest_bit_index(m) for m in masks]
        assert lowest == sorted(lowest)

    def test_from_groups(self):
        uf = UnionFind.from_groups(6, [[0, 1, 2], [4, 5]])
        assert uf.n_sets == 3
        assert uf.set_mask(0) == bms.from_indices([0, 1, 2])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=12),
           st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=20))
    def test_set_masks_partition_universe(self, n, unions):
        uf = UnionFind(n)
        for a, b in unions:
            if a < n and b < n:
                uf.union(a, b)
        masks = uf.sets()
        combined = 0
        for mask in masks:
            assert combined & mask == 0
            combined |= mask
        assert combined == (1 << n) - 1
        assert len(masks) == uf.n_sets


class TestPlan:
    def make_simple_join(self):
        left = scan_plan(0, 100, 1.0)
        right = scan_plan(1, 200, 2.0)
        return join_plan(left, right, 50, 10.0, JoinMethod.HASH_JOIN)

    def test_scan_properties(self):
        plan = scan_plan(3, 10, 0.5)
        assert plan.is_leaf
        assert plan.n_relations == 1
        assert plan.n_joins == 0
        assert plan.depth() == 1
        assert plan.leaf_order() == [3]
        plan.validate()

    def test_join_properties(self):
        plan = self.make_simple_join()
        assert not plan.is_leaf
        assert plan.n_relations == 2
        assert plan.n_joins == 1
        assert plan.relations == 0b11
        assert plan.is_left_deep() and plan.is_right_deep()
        plan.validate()

    def test_overlapping_join_rejected(self):
        left = scan_plan(0, 10, 1.0)
        with pytest.raises(ValueError):
            join_plan(left, left, 5, 2.0, JoinMethod.HASH_JOIN)

    def test_left_deep_and_bushy_detection(self):
        a, b, c, d = (scan_plan(i, 10, 1.0) for i in range(4))
        ab = join_plan(a, b, 10, 2.0, JoinMethod.HASH_JOIN)
        abc = join_plan(ab, c, 10, 3.0, JoinMethod.HASH_JOIN)
        assert abc.is_left_deep()
        assert not abc.is_bushy()
        cd = join_plan(c, d, 10, 2.0, JoinMethod.HASH_JOIN)
        bushy = join_plan(ab, cd, 10, 5.0, JoinMethod.HASH_JOIN)
        assert bushy.is_bushy()
        assert not bushy.is_left_deep()

    def test_traversal_and_subplan(self):
        plan = self.make_simple_join()
        assert len(list(plan.iter_nodes())) == 3
        assert len(list(plan.iter_joins())) == 1
        assert plan.subplan_for(0b01).relation_index == 0
        assert plan.subplan_for(0b100) is None

    def test_structure_encoding(self):
        plan = self.make_simple_join()
        assert plan.structure() == ((0,), (1,))

    def test_validate_detects_bad_bitmap(self):
        bad = scan_plan(0, 10, 1.0)
        corrupted = join_plan(scan_plan(1, 5, 1.0), scan_plan(2, 5, 1.0), 5, 2.0,
                              JoinMethod.HASH_JOIN)
        object.__setattr__(corrupted, "relations", 0b1)
        with pytest.raises(ValueError):
            corrupted.validate()

    def test_to_string_contains_names(self):
        plan = self.make_simple_join()
        rendered = plan.to_string(["lineitem", "orders"])
        assert "lineitem" in rendered and "orders" in rendered
        assert "hashjoin" in rendered


class TestMemoTable:
    def test_put_keeps_cheapest(self):
        memo = MemoTable()
        cheap = scan_plan(0, 10, 1.0)
        expensive = scan_plan(0, 10, 5.0)
        assert memo.put(0b1, expensive)
        assert not memo.put(0b1, scan_plan(0, 10, 9.0))
        assert memo.put(0b1, cheap)
        assert memo[0b1].cost == 1.0
        assert memo.n_updates == 3
        assert memo.n_improvements == 2

    def test_get_and_contains(self):
        memo = MemoTable()
        assert memo.get(0b1) is None
        assert 0b1 not in memo
        memo.put(0b1, scan_plan(0, 10, 1.0))
        assert 0b1 in memo
        with pytest.raises(KeyError):
            memo[0b10]

    def test_put_unconditionally(self):
        memo = MemoTable()
        memo.put(0b1, scan_plan(0, 10, 1.0))
        memo.put_unconditionally(0b1, scan_plan(0, 10, 99.0))
        assert memo[0b1].cost == 99.0

    def test_keys_of_size_and_clear(self):
        memo = MemoTable()
        memo.put(0b1, scan_plan(0, 10, 1.0))
        memo.put(0b10, scan_plan(1, 10, 1.0))
        memo.put(0b11, join_plan(memo[0b1], memo[0b10], 5, 3.0, JoinMethod.HASH_JOIN))
        assert sorted(memo.keys_of_size(1)) == [0b1, 0b10]
        assert memo.keys_of_size(2) == [0b11]
        memo.clear()
        assert len(memo) == 0
        assert memo.n_updates == 0


class TestOptimizerStats:
    def test_record_pair_and_ccp(self):
        stats = OptimizerStats(algorithm="x")
        stats.record_pair(2, is_ccp=False)
        stats.record_pair(2, is_ccp=True)
        stats.record_pair(3, is_ccp=True)
        assert stats.evaluated_pairs == 3
        assert stats.ccp_pairs == 2
        assert stats.wasted_pairs == 1
        assert stats.level_pairs == {2: 2, 3: 1}
        assert stats.level_ccp == {2: 1, 3: 1}
        assert 0 < stats.efficiency < 1
        assert stats.normalized_evaluated_pairs() == pytest.approx(1.5)

    def test_record_set(self):
        stats = OptimizerStats()
        stats.record_set(2, connected=True)
        stats.record_set(2, connected=False)
        assert stats.sets_considered == 2
        assert stats.connected_sets == 1
        assert stats.level_sets == {2: 1}

    def test_efficiency_with_no_pairs(self):
        assert OptimizerStats().efficiency == 1.0
        assert OptimizerStats().normalized_evaluated_pairs() == 1.0

    def test_merge(self):
        a = OptimizerStats()
        a.record_pair(2, is_ccp=True)
        b = OptimizerStats()
        b.record_pair(2, is_ccp=False)
        b.record_pair(4, is_ccp=True)
        b.record_set(4, connected=True)
        a.merge(b)
        assert a.evaluated_pairs == 3
        assert a.ccp_pairs == 2
        assert a.level_pairs == {2: 2, 4: 1}
        assert a.connected_sets == 1

    def test_stopwatch(self):
        with Stopwatch() as watch:
            sum(range(1000))
        assert watch.elapsed >= 0.0
