"""Tests for the multi-core CPU parallel-time model (Figure 12 machinery)."""

import pytest

from repro.optimizers import DPCcp, DPE, DPSize, MPDP
from repro.parallel import CPUCostConstants, ParallelCPUModel, speedup_curve
from repro.workloads import musicbrainz_query, star_query


@pytest.fixture(scope="module")
def query():
    return musicbrainz_query(12, seed=6)


@pytest.fixture(scope="module")
def mpdp_stats(query):
    return MPDP().optimize(query).stats


@pytest.fixture(scope="module")
def dpe_stats(query):
    return DPE().optimize(query).stats


class TestEffectiveThreads:
    def test_monotone_nondecreasing(self):
        model = ParallelCPUModel()
        values = [model.effective_threads(t) for t in range(1, 33)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_linear_until_saturation(self):
        model = ParallelCPUModel(cache_saturation_threads=6)
        for threads in range(1, 7):
            assert model.effective_threads(threads) == threads

    def test_sublinear_beyond_saturation(self):
        model = ParallelCPUModel(cache_saturation_threads=6, contention_factor=0.05)
        assert model.effective_threads(24) < 24
        assert model.effective_threads(24) > 6

    def test_positive_threads_required(self):
        with pytest.raises(ValueError):
            ParallelCPUModel().effective_threads(0)


class TestSimulatedTimes:
    def test_more_threads_never_slower(self, mpdp_stats):
        model = ParallelCPUModel()
        times = [model.simulate(mpdp_stats, t, "MPDP") for t in (1, 2, 4, 8, 16, 24)]
        assert all(b <= a * (1 + 1e-12) for a, b in zip(times, times[1:]))

    def test_speedup_bounded_by_thread_count(self, mpdp_stats):
        model = ParallelCPUModel()
        curve = speedup_curve(model, mpdp_stats, "MPDP", range(1, 25))
        for threads, speedup in curve.items():
            assert 0 < speedup <= threads + 1e-9

    def test_mpdp_scales_better_than_dpe(self, mpdp_stats, dpe_stats):
        """Figure 12: MPDP's enumeration parallelises, DPE's does not."""
        model = ParallelCPUModel()
        mpdp_speedup = speedup_curve(model, mpdp_stats, "MPDP", [24])[24]
        dpe_speedup = speedup_curve(model, dpe_stats, "DPE", [24])[24]
        assert mpdp_speedup > dpe_speedup

    def test_dpe_speedup_saturates(self, dpe_stats):
        model = ParallelCPUModel()
        curve = speedup_curve(model, dpe_stats, "DPE", [4, 8, 16, 24])
        # Once the sequential producer dominates, more consumers change little.
        assert curve[24] - curve[16] < 0.5

    def test_single_thread_is_baseline(self, mpdp_stats):
        model = ParallelCPUModel()
        assert speedup_curve(model, mpdp_stats, "MPDP", [1])[1] == pytest.approx(1.0)

    def test_sequential_time_positive(self, mpdp_stats):
        assert ParallelCPUModel().sequential_time(mpdp_stats) > 0

    def test_dpsize_pays_for_wasted_pairs(self):
        query = star_query(9, seed=3)
        model = ParallelCPUModel()
        dpsize_time = model.simulate(DPSize().optimize(query).stats, 24, "DPsize")
        mpdp_time = model.simulate(MPDP().optimize(query).stats, 24, "MPDP")
        assert mpdp_time < dpsize_time

    def test_custom_constants_change_absolute_times(self, mpdp_stats):
        fast = ParallelCPUModel(constants=CPUCostConstants(cost_seconds=50e-9))
        slow = ParallelCPUModel(constants=CPUCostConstants(cost_seconds=500e-9))
        assert fast.simulate(mpdp_stats, 8, "MPDP") < slow.simulate(mpdp_stats, 8, "MPDP")

    def test_dpccp_routes_to_producer_consumer(self, query):
        stats = DPCcp().optimize(query).stats
        model = ParallelCPUModel()
        assert model.simulate(stats, 8, "DPccp") == pytest.approx(
            model.producer_consumer_time(stats, 8))


class TestSpeedupCurveDispatch:
    def test_explicit_style_needs_no_registry_entry(self, mpdp_stats, recwarn):
        """An unregistered name with an explicit style must not warn — the
        style is forwarded to every curve point instead of being re-resolved
        through the deprecated name-prefix fallback per point."""
        import warnings

        model = ParallelCPUModel()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            curve = speedup_curve(model, mpdp_stats, "MyCustomOptimizer",
                                  [1, 8, 24], execution_style="level_parallel")
        assert curve[1] == pytest.approx(1.0)
        assert curve[24] > curve[8] > curve[1] - 1e-9

    def test_explicit_style_overrides_name(self, dpe_stats):
        model = ParallelCPUModel()
        as_producer = speedup_curve(model, dpe_stats, "DPE", [24])[24]
        forced = speedup_curve(model, dpe_stats, thread_counts=[24],
                               execution_style="producer_consumer")[24]
        assert forced == pytest.approx(as_producer)

    def test_unregistered_name_warns_once(self, mpdp_stats):
        model = ParallelCPUModel()
        with pytest.warns(DeprecationWarning) as record:
            curve = speedup_curve(model, mpdp_stats, "NotRegisteredDP",
                                  [1, 4, 8, 16, 24])
        assert len(curve) == 5
        # One resolution for the whole curve, not one per curve point.
        assert len(record) == 1

    def test_requires_name_or_style(self, mpdp_stats):
        with pytest.raises(ValueError):
            speedup_curve(ParallelCPUModel(), mpdp_stats, thread_counts=[1])
