"""Tests for grow(), connectivity and CCP-pair counting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitmapset as bms
from repro.core.connectivity import (
    connected_components,
    count_ccp_pairs,
    count_connected_subsets,
    grow,
    is_connected,
    iter_connected_subsets_bruteforce,
    iter_connected_subsets_of_size,
)
from repro.core.joingraph import JoinGraph


def paper_example_graph():
    """The 9-relation cyclic join graph of Figure 5 (0-indexed)."""
    graph = JoinGraph(9)
    edges = [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (4, 8), (8, 5), (8, 6), (5, 6), (6, 7), (5, 7)]
    for left, right in edges:
        graph.add_edge(left, right, 0.5)
    return graph


def star_graph(n):
    graph = JoinGraph(n)
    for i in range(1, n):
        graph.add_edge(0, i, 0.5)
    return graph


def chain_graph(n):
    graph = JoinGraph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1, 0.5)
    return graph


def random_graph(n, edge_bits):
    """Deterministic graph from a bitmask selecting extra edges over a chain."""
    graph = chain_graph(n)
    extra = [(i, j) for i in range(n) for j in range(i + 2, n)]
    for index, (i, j) in enumerate(extra):
        if edge_bits & (1 << index):
            graph.add_edge(i, j, 0.5)
    return graph


class TestGrow:
    def test_grow_paper_example(self):
        graph = paper_example_graph()
        # Paper Section 3.2.1 (1-indexed {1,2,3} -> {1,2,3,4,5,9}).
        source = bms.from_indices([0, 1, 2])
        restricted = bms.from_indices([0, 1, 2, 3, 4, 8])
        assert grow(graph, source, restricted) == restricted

    def test_grow_respects_restriction(self):
        graph = chain_graph(5)
        reached = grow(graph, bms.bit(0), bms.from_indices([0, 1, 2]))
        assert reached == bms.from_indices([0, 1, 2])

    def test_grow_source_outside_restriction(self):
        graph = chain_graph(3)
        with pytest.raises(ValueError):
            grow(graph, bms.bit(0), bms.bit(1))

    def test_grow_disconnected_restriction(self):
        graph = chain_graph(5)
        reached = grow(graph, bms.bit(0), bms.from_indices([0, 1, 3, 4]))
        assert reached == bms.from_indices([0, 1])


class TestIsConnected:
    def test_empty_not_connected(self):
        assert not is_connected(chain_graph(3), 0)

    def test_singleton_connected(self):
        assert is_connected(chain_graph(3), bms.bit(2))

    def test_chain_interval_connected(self):
        graph = chain_graph(5)
        assert is_connected(graph, bms.from_indices([1, 2, 3]))
        assert not is_connected(graph, bms.from_indices([0, 2]))

    def test_star_needs_hub(self):
        graph = star_graph(5)
        assert is_connected(graph, bms.from_indices([0, 2, 4]))
        assert not is_connected(graph, bms.from_indices([1, 2]))


class TestConnectedComponents:
    def test_single_component(self):
        graph = chain_graph(4)
        assert connected_components(graph, graph.all_relations_mask) == [0b1111]

    def test_two_components(self):
        graph = chain_graph(5)
        components = connected_components(graph, bms.from_indices([0, 1, 3, 4]))
        assert components == [bms.from_indices([0, 1]), bms.from_indices([3, 4])]

    def test_empty_mask(self):
        assert connected_components(chain_graph(3), 0) == []


class TestConnectedSubsetEnumeration:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_star_counts(self, n):
        graph = star_graph(n)
        for size in range(2, n + 1):
            expected = __import__("math").comb(n - 1, size - 1)
            assert count_connected_subsets(graph, size) == expected

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_chain_counts(self, n):
        graph = chain_graph(n)
        for size in range(2, n + 1):
            assert count_connected_subsets(graph, size) == n - size + 1

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5])
    def test_matches_bruteforce(self, size):
        graph = paper_example_graph()
        fast = set(iter_connected_subsets_of_size(graph, size))
        brute = set(iter_connected_subsets_bruteforce(graph, size))
        assert fast == brute

    def test_out_of_range_sizes(self):
        graph = chain_graph(3)
        assert list(iter_connected_subsets_of_size(graph, 0)) == []
        assert list(iter_connected_subsets_of_size(graph, 4)) == []

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=3, max_value=6), st.integers(min_value=0, max_value=2 ** 10 - 1))
    def test_enumeration_matches_bruteforce_random_graphs(self, n, edge_bits):
        graph = random_graph(n, edge_bits)
        for size in range(1, n + 1):
            fast = set(iter_connected_subsets_of_size(graph, size))
            brute = set(iter_connected_subsets_bruteforce(graph, size))
            assert fast == brute


class TestCCPCounting:
    def test_two_relation_query(self):
        graph = chain_graph(2)
        assert count_ccp_pairs(graph) == 2  # (a,b) and (b,a)

    @pytest.mark.parametrize("n,expected", [(3, 8), (4, 20)])
    def test_chain_known_values(self, n, expected):
        # sum over interval lengths k of (n-k+1) * 2(k-1)
        assert count_ccp_pairs(chain_graph(n)) == expected

    def test_star_4(self):
        # Connected subsets of size k contain the hub: C(3, k-1); each tree
        # set of size k yields 2(k-1) ordered pairs: 3*2 + 3*4 + 1*6 = 24.
        assert count_ccp_pairs(star_graph(4)) == 24

    def test_clique_3(self):
        # Every split of every subset is valid: 3 pairs of size 2 (x2) + one
        # 3-set with 6 ordered splits = 12.
        graph = JoinGraph(3)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(0, 2, 0.5)
        assert count_ccp_pairs(graph) == 12
