"""Regression tests: cardinality estimation must stay finite for huge queries.

The product of base cardinalities over hundreds of relations exceeds the
double-precision range long before the join selectivities bring it back down;
the estimator therefore accumulates in log space and caps genuinely
astronomical estimates.  These tests pin that behaviour, because the 100- to
1000-relation heuristic experiments (Tables 1 and 2) depend on it.
"""

import math

import pytest

from repro.core.joingraph import JoinGraph
from repro.cost import CardinalityEstimator
from repro.heuristics import GEQO, GOO, UnionDP
from repro.workloads import snowflake_query, star_query


class TestLogSpaceEstimation:
    def test_matches_direct_product_at_small_scale(self):
        graph = JoinGraph(3)
        graph.add_edge(0, 1, 0.01)
        graph.add_edge(1, 2, 0.1)
        estimator = CardinalityEstimator(graph, [100.0, 200.0, 50.0])
        assert estimator.rows(0b111) == pytest.approx(100 * 200 * 50 * 0.01 * 0.1, rel=1e-9)

    def test_no_overflow_on_200_relation_cross_heavy_query(self):
        # 200 relations of 1e6 rows each, joined in a chain with mild
        # selectivities: the naive product of base rows alone is 1e1200.
        n = 200
        graph = JoinGraph(n)
        for i in range(n - 1):
            graph.add_edge(i, i + 1, 0.5)
        estimator = CardinalityEstimator(graph, [1e6] * n)
        estimate = estimator.rows(graph.all_relations_mask)
        assert math.isfinite(estimate)
        assert estimate == CardinalityEstimator.MAX_ROWS  # capped, not inf

    def test_pk_fk_chain_stays_accurate_at_scale(self):
        # PK-FK selectivities cancel the dimension cardinalities, so even a
        # 300-relation chain has a small true estimate; it must not be
        # destroyed by the log-space accumulation.
        n = 300
        graph = JoinGraph(n)
        rows = [1e6] * n
        for i in range(n - 1):
            graph.add_edge(i, i + 1, 1.0 / 1e6, is_pk_fk=True)
        estimator = CardinalityEstimator(graph, rows)
        assert estimator.rows(graph.all_relations_mask) == pytest.approx(1e6, rel=1e-3)

    def test_large_workload_queries_have_finite_rows(self):
        for maker, n in ((star_query, 150), (snowflake_query, 150)):
            query = maker(n, seed=3)
            assert math.isfinite(query.rows(query.all_relations_mask))


class TestHeuristicsOnVeryLargeQueries:
    def test_geqo_finds_a_tour_on_100_relation_snowflake(self):
        query = snowflake_query(100, seed=7, selection_probability=0.7)
        result = GEQO(seed=1, generations=20, pool_size=60).optimize(query)
        assert math.isfinite(result.cost)
        assert result.plan.relations == query.all_relations_mask

    def test_goo_and_uniondp_costs_finite_on_120_relation_star(self):
        query = star_query(120, seed=5, selection_probability=1.0)
        goo = GOO().optimize(query)
        uniondp = UnionDP(k=8).optimize(query)
        assert math.isfinite(goo.cost)
        assert math.isfinite(uniondp.cost)
        assert uniondp.cost <= goo.cost * 2.0
