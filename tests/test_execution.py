"""Tests for the execution substrates: runtime model, dataset, executors,
q-error injection, and planner estimator wiring."""

import numpy as np
import pytest

from repro.cost.cardinality import CardinalityEstimator, estimator_overrides_rows
from repro.execution import (
    CostBasedRuntimeModel,
    InMemoryExecutor,
    PerturbedEstimator,
    ReferenceExecutor,
    SyntheticDataset,
    perturbed_query,
    q_error,
)
from repro.optimizers import DPCcp, MPDP
from repro.heuristics import GOO, IDP2, LinearizedDP
from repro.planner import AdaptivePlanner, DEFAULT_REGISTRY
from repro.workloads import chain_query, cycle_query, musicbrainz_query, star_query


class TestCostBasedRuntimeModel:
    def test_runtime_grows_with_cost(self):
        model = CostBasedRuntimeModel()
        query = star_query(6, seed=0)
        plan = MPDP().optimize(query).plan
        assert model.runtime_seconds(plan) > model.startup_seconds

    def test_linear_in_cost_units(self):
        model = CostBasedRuntimeModel(seconds_per_cost_unit=1e-6, startup_seconds=0.0)
        query = star_query(5, seed=1)
        plan = MPDP().optimize(query).plan
        assert model.runtime_seconds(plan) == pytest.approx(plan.cost * 1e-6)


class TestSyntheticDataset:
    def test_rows_scaled_and_capped(self):
        query = star_query(6, seed=2, fact_rows=1e7)
        dataset = SyntheticDataset(query, scale=1e-4, max_rows=500)
        assert dataset.rows(0) == 500  # capped
        for relation in range(query.n_relations):
            assert dataset.rows(relation) >= 2

    def test_pk_fk_columns_reference_valid_keys(self):
        query = star_query(5, seed=3)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=1000)
        for index, edge in enumerate(query.graph.edges):
            column = f"j{index}"
            left = dataset.table(edge.left)[column]
            right = dataset.table(edge.right)[column]
            # FK values must fall inside the PK value range.
            assert min(left.min(), right.min()) >= 0
            assert max(left.max(), right.max()) < max(len(left), len(right))

    def test_every_edge_has_columns_on_both_sides(self):
        query = musicbrainz_query(6, seed=1)
        dataset = SyntheticDataset(query, scale=1e-4, max_rows=2000)
        for index, edge in enumerate(query.graph.edges):
            column = f"j{index}"
            assert column in dataset.table(edge.left)
            assert column in dataset.table(edge.right)

    def test_deterministic_for_seed(self):
        query = chain_query(4, seed=5)
        a = SyntheticDataset(query, seed=7)
        b = SyntheticDataset(query, seed=7)
        for relation in range(query.n_relations):
            for column, values in a.table(relation).items():
                assert (values == b.table(relation)[column]).all()

    def test_explicit_generator_matches_seed(self):
        """Passing rng=default_rng(seed) is exactly the seed=seed dataset.

        Regression test for the explicit-Generator contract: all draws come
        from one instance-owned generator, created from ``seed`` unless the
        caller supplies its own, and columns are drawn in graph edge order —
        so the two spellings must produce bit-identical tables.
        """
        query = cycle_query(5, seed=2)
        seeded = SyntheticDataset(query, seed=13)
        explicit = SyntheticDataset(query, rng=np.random.default_rng(13))
        for relation in range(query.n_relations):
            assert seeded.table(relation).keys() == explicit.table(relation).keys()
            for column, values in seeded.table(relation).items():
                assert (values == explicit.table(relation)[column]).all()

    def test_explicit_generator_overrides_seed(self):
        query = chain_query(4, seed=5)
        a = SyntheticDataset(query, seed=999, rng=np.random.default_rng(3))
        b = SyntheticDataset(query, seed=0, rng=np.random.default_rng(3))
        for relation in range(query.n_relations):
            for column, values in a.table(relation).items():
                assert (values == b.table(relation)[column]).all()

    def test_never_touches_global_numpy_state(self):
        """Dataset generation must not consume or reset np.random's state."""
        np.random.seed(42)
        before = np.random.get_state()[1].copy()
        SyntheticDataset(chain_query(5, seed=1), seed=4)
        after = np.random.get_state()[1]
        assert (before == after).all()

    def test_invalid_parameters_rejected(self):
        query = chain_query(3, seed=0)
        with pytest.raises(ValueError, match="scale"):
            SyntheticDataset(query, scale=0.0)
        with pytest.raises(ValueError, match="min_rows"):
            SyntheticDataset(query, min_rows=0)
        with pytest.raises(ValueError, match="min_rows"):
            SyntheticDataset(query, min_rows=100, max_rows=10)


class TestInMemoryExecutor:
    def test_executes_leaf_plan(self):
        query = chain_query(3, seed=1)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=100)
        executor = InMemoryExecutor(dataset)
        result = executor.execute(query.leaf_plan(0))
        assert result.rows == dataset.rows(0)

    def test_row_count_independent_of_join_order(self):
        """Different plans for the same query must return the same result size."""
        query = musicbrainz_query(6, seed=9)
        dataset = SyntheticDataset(query, scale=1e-4, max_rows=3000)
        executor = InMemoryExecutor(dataset)
        plans = [MPDP().optimize(query).plan,
                 GOO().optimize(query).plan,
                 DPCcp().optimize(query).plan]
        row_counts = {executor.execute(plan).rows for plan in plans}
        assert len(row_counts) == 1

    def test_pk_fk_chain_preserves_fact_rows(self):
        """Joining a fact table to dimension PKs never loses or multiplies rows."""
        query = star_query(4, seed=4, selection_probability=0.0)
        dataset = SyntheticDataset(query, scale=1e-4, max_rows=2000)
        executor = InMemoryExecutor(dataset)
        plan = MPDP().optimize(query).plan
        result = executor.execute(plan)
        assert result.rows == dataset.rows(0)

    def test_wall_time_recorded(self):
        query = chain_query(4, seed=2)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=500)
        result = InMemoryExecutor(dataset).execute(MPDP().optimize(query).plan)
        assert result.wall_time_seconds >= 0.0

    def test_cross_product_plan_rejected(self):
        from repro.core.plan import JoinMethod, join_plan
        query = chain_query(3, seed=3)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=100)
        executor = InMemoryExecutor(dataset)
        # Relations 0 and 2 of a chain are not joined by any predicate.
        bad = join_plan(query.leaf_plan(0), query.leaf_plan(2), 10, 1.0, JoinMethod.HASH_JOIN)
        with pytest.raises(ValueError):
            executor.execute(bad)

    def test_mismatched_plan_dataset_rejected(self):
        """A plan over relations the dataset never generated is a clear error."""
        big = chain_query(6, seed=1)
        small = chain_query(3, seed=1)
        dataset = SyntheticDataset(small, scale=1e-3, max_rows=100)
        plan = MPDP().optimize(big).plan
        for executor in (InMemoryExecutor(dataset), ReferenceExecutor(dataset)):
            with pytest.raises(ValueError, match="plan/dataset mismatch"):
                executor.execute(plan)

    def test_stats_tree_mirrors_plan_tree(self):
        query = chain_query(5, seed=4)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=200)
        plan = MPDP().optimize(query).plan
        result = InMemoryExecutor(dataset).execute(plan)
        stats = result.stats
        assert stats.relations == plan.relations
        assert stats.rows == result.rows
        # One stats node per plan node, keyed uniquely by relation bitmap.
        assert stats.n_nodes == 2 * query.n_relations - 1
        assert len(result.node_rows()) == stats.n_nodes
        # Inclusive timing: the root covers its children.
        for node in stats.iter_nodes():
            for child in node.children:
                assert node.seconds >= 0.0 and child.seconds >= 0.0
            assert node.seconds >= max(
                (child.seconds for child in node.children), default=0.0)

    def test_empty_join_propagates_to_empty_result(self):
        """A join with zero matches yields zero rows all the way up."""
        query = chain_query(4, seed=6)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=50)
        # Force the first edge's columns apart: no key can ever match.
        dataset.columns[0]["j0"] = np.zeros(dataset.rows(0), dtype=np.int64)
        dataset.columns[1]["j0"] = np.ones(dataset.rows(1), dtype=np.int64)
        plan = MPDP().optimize(query).plan
        for executor_cls in (InMemoryExecutor, ReferenceExecutor):
            result = executor_cls(dataset).execute(plan)
            assert result.rows == 0
            # Every node containing the broken edge {0, 1} is empty; leaves
            # are untouched.
            for node in result.stats.iter_nodes():
                if node.relations & 0b11 == 0b11:
                    assert node.rows == 0
                elif node.relations.bit_count() == 1:
                    assert node.rows > 0


class TestReferenceExecutor:
    def test_matches_vectorized_on_row_counts(self):
        query = musicbrainz_query(7, seed=3)
        dataset = SyntheticDataset(query, scale=1e-4, max_rows=500)
        plan = MPDP().optimize(query).plan
        vec = InMemoryExecutor(dataset).execute(plan)
        ref = ReferenceExecutor(dataset).execute(plan)
        assert vec.rows == ref.rows
        assert vec.node_rows() == ref.node_rows()

    def test_materialized_contents_identical_as_multisets(self):
        """Beyond counts: the actual result tuples agree between executors."""
        query = cycle_query(4, seed=8)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=60)
        plan = MPDP().optimize(query).plan
        vectorized = InMemoryExecutor(dataset).materialize(plan)
        order, rows = ReferenceExecutor(dataset).materialize(plan)
        relations = sorted(vectorized)
        position_of = {relation: order.index(relation) for relation in relations}
        vec_tuples = sorted(zip(*(vectorized[r].tolist() for r in relations)))
        ref_tuples = sorted(tuple(row[position_of[r]] for r in relations)
                            for row in rows)
        assert vec_tuples == ref_tuples

    def test_executes_leaf_plan(self):
        query = chain_query(3, seed=1)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=100)
        result = ReferenceExecutor(dataset).execute(query.leaf_plan(1))
        assert result.rows == dataset.rows(1)


class TestQError:
    def test_exact_estimate_is_one(self):
        assert q_error(100.0, 100.0) == 1.0

    def test_symmetric_over_and_under(self):
        assert q_error(100.0, 400.0) == pytest.approx(4.0)
        assert q_error(400.0, 100.0) == pytest.approx(4.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            q_error(0.0, 10.0)
        with pytest.raises(ValueError):
            q_error(10.0, -1.0)


class TestPerturbedEstimator:
    def test_q_below_one_rejected(self):
        query = chain_query(3, seed=0)
        with pytest.raises(ValueError, match="q must be >= 1"):
            PerturbedEstimator(query.cardinality, q=0.5)

    def test_q_one_is_bit_identical_noop(self):
        query = chain_query(6, seed=2)
        wrapped = PerturbedEstimator(query.cardinality, q=1.0, seed=9)
        all_mask = query.graph.all_relations_mask
        for mask in range(1, all_mask + 1):
            assert wrapped.rows(mask) == query.cardinality.rows(mask)

    def test_base_relations_never_perturbed(self):
        query = chain_query(5, seed=3)
        wrapped = PerturbedEstimator(query.cardinality, q=16.0, seed=1)
        for relation in range(query.n_relations):
            assert wrapped.rows(1 << relation) == query.cardinality.rows(1 << relation)

    def test_error_bounded_by_q(self):
        query = musicbrainz_query(8, seed=4)
        for q in (2.0, 4.0, 16.0):
            wrapped = PerturbedEstimator(query.cardinality, q=q, seed=5)
            mask = query.graph.all_relations_mask
            error = q_error(query.cardinality.rows(mask), wrapped.rows(mask))
            assert 1.0 <= error <= q

    def test_deterministic_per_seed_and_set(self):
        query = chain_query(7, seed=1)
        a = PerturbedEstimator(query.cardinality, q=4.0, seed=3)
        b = PerturbedEstimator(query.cardinality, q=4.0, seed=3)
        c = PerturbedEstimator(query.cardinality, q=4.0, seed=4)
        mask = 0b1110
        assert a.rows(mask) == b.rows(mask)
        assert a.rows(mask) != c.rows(mask)
        # Pure function of the set: evaluation order cannot matter.
        fresh = PerturbedEstimator(query.cardinality, q=4.0, seed=3)
        fresh.rows(0b11)
        assert fresh.rows(mask) == a.rows(mask)

    def test_cache_key_distinguishes_q_and_seed(self):
        query = chain_query(4, seed=0)
        keys = {PerturbedEstimator(query.cardinality, q=q, seed=s).cache_key()
                for q in (1.0, 2.0) for s in (0, 1)}
        assert len(keys) == 4
        assert query.cardinality.cache_key() not in keys

    def test_overrides_rows_predicate(self):
        query = chain_query(3, seed=0)
        assert not estimator_overrides_rows(query.cardinality)
        assert estimator_overrides_rows(
            PerturbedEstimator(query.cardinality, q=2.0))
        assert isinstance(PerturbedEstimator(query.cardinality, q=2.0),
                          CardinalityEstimator)

    def test_perturbed_query_wrapper(self):
        query = chain_query(5, seed=2)
        planned = perturbed_query(query, q=4.0, seed=7)
        assert planned.graph is query.graph
        assert planned.name == "chain_5@q4s7"
        assert isinstance(planned.cardinality, PerturbedEstimator)
        exact = perturbed_query(query, q=1.0)
        assert MPDP().optimize(exact).cost == MPDP().optimize(query).cost

    def test_with_estimator_rejects_contracted_and_foreign_graph(self):
        query = chain_query(4, seed=1)
        other = chain_query(4, seed=1)
        with pytest.raises(ValueError, match="join graph"):
            query.with_estimator(PerturbedEstimator(other.cardinality, q=2.0))
        plans = [query.leaf_plan(v) for v in range(4)]
        contracted = query.contract([1 << v for v in range(4)], plans)
        with pytest.raises(ValueError, match="root query"):
            contracted.with_estimator(
                PerturbedEstimator(query.cardinality, q=2.0))


class TestPerturbedPlanningBitIdentity:
    """Scalar and vectorized backends must see identical perturbed estimates.

    The kernel fold paths (rows_batch's spec fold, the contracted-query
    fold, LinDP's interval fold) reconstruct estimates from base statistics;
    estimator_overrides_rows() routes overriding estimators through rows()
    instead, so planning under perturbation stays backend-bit-identical.
    """

    @pytest.mark.parametrize("q,seed", [(2.0, 0), (16.0, 11)])
    def test_exact_mpdp(self, q, seed):
        query = musicbrainz_query(9, seed=2)
        planned = perturbed_query(query, q=q, seed=seed)
        scalar = MPDP(backend="scalar").optimize(planned)
        vectorized = MPDP(backend="vectorized").optimize(planned)
        assert scalar.cost == vectorized.cost
        assert scalar.plan.structure() == vectorized.plan.structure()

    def test_idp2_contracted_fold(self):
        query = chain_query(16, seed=3)
        planned = perturbed_query(query, q=4.0, seed=5)
        scalar = IDP2(k=5, backend="scalar").optimize(planned)
        vectorized = IDP2(k=5, backend="vectorized").optimize(planned)
        assert scalar.cost == vectorized.cost
        assert scalar.plan.structure() == vectorized.plan.structure()

    def test_lindp_interval_fold(self):
        query = chain_query(20, seed=4)
        planned = perturbed_query(query, q=4.0, seed=5)
        scalar = LinearizedDP(backend="scalar").optimize(planned)
        vectorized = LinearizedDP(backend="vectorized").optimize(planned)
        assert scalar.cost == vectorized.cost
        assert scalar.plan.structure() == vectorized.plan.structure()

    def test_perturbation_actually_reaches_vectorized_folds(self):
        """Guard against silently planning with unperturbed estimates."""
        query = chain_query(20, seed=4)
        planned = perturbed_query(query, q=16.0, seed=11)
        exact = LinearizedDP(backend="vectorized").optimize(query)
        perturbed = LinearizedDP(backend="vectorized").optimize(planned)
        # Costs are computed under different believed cardinalities, so
        # equality would mean the override was bypassed.
        assert exact.cost != perturbed.cost

    def test_rows_batch_routes_through_override(self):
        query = chain_query(8, seed=1)
        wrapped = perturbed_query(query, q=4.0, seed=2)
        masks = [0b11, 0b110, 0b1111, 0b11, 0b11111111]
        batch = wrapped.rows_batch(masks)
        for mask, estimate in zip(masks, batch):
            assert estimate == wrapped.rows(mask)


class TestPlannerEstimatorInjection:
    def test_wrapper_applied_and_cached_separately(self):
        cache_sharing_planner = AdaptivePlanner(
            estimator_wrapper=lambda est: PerturbedEstimator(est, q=4.0, seed=1))
        exact_planner = AdaptivePlanner()
        query = chain_query(8, seed=2)
        perturbed_outcome = cache_sharing_planner.plan(query)
        exact_outcome = exact_planner.plan(query)
        assert (perturbed_outcome.decision.signature
                != exact_outcome.decision.signature)
        # Second plan of a structurally identical query hits the cache.
        again = cache_sharing_planner.plan(chain_query(8, seed=2))
        assert again.decision.cache_hit
        assert again.cost == perturbed_outcome.cost

    def test_q_one_wrapper_plans_identically(self):
        planner = AdaptivePlanner(
            estimator_wrapper=lambda est: PerturbedEstimator(est, q=1.0))
        query = star_query(7, seed=3)
        assert planner.plan(query).cost == AdaptivePlanner().plan(query).cost

    def test_non_callable_wrapper_rejected(self):
        with pytest.raises(ValueError, match="callable"):
            AdaptivePlanner(estimator_wrapper="not-a-function")

    def test_plan_many_applies_wrapper(self):
        planner = AdaptivePlanner(
            estimator_wrapper=lambda est: PerturbedEstimator(est, q=4.0, seed=2))
        queries = [chain_query(6, seed=1), chain_query(6, seed=1)]
        outcomes = planner.plan_many(queries)
        assert outcomes[1].decision.deduplicated
        assert outcomes[0].cost == outcomes[1].cost

    def test_plan_sql_estimator_wrapper(self):
        from repro.catalog.schema import Catalog
        from repro.sql import plan_sql

        catalog = Catalog()
        for table in ("a", "b", "c"):
            catalog.add_table(table, 1e4)
        sql = "select * from a, b, c where a.x = b.x and b.y = c.y"
        wrapper = lambda est: PerturbedEstimator(est, q=4.0, seed=3)
        planned = plan_sql(sql, catalog, estimator_wrapper=wrapper)
        exact = plan_sql(sql, catalog)
        assert (planned.outcome.decision.signature
                != exact.outcome.decision.signature)
        with pytest.raises(ValueError, match="estimator_wrapper="):
            plan_sql(sql, catalog, planner=AdaptivePlanner(),
                     estimator_wrapper=wrapper)
