"""Tests for the execution substrates: runtime model, dataset, executor."""

import pytest

from repro.execution import (
    CostBasedRuntimeModel,
    InMemoryExecutor,
    SyntheticDataset,
)
from repro.optimizers import DPCcp, MPDP
from repro.heuristics import GOO
from repro.workloads import chain_query, musicbrainz_query, star_query


class TestCostBasedRuntimeModel:
    def test_runtime_grows_with_cost(self):
        model = CostBasedRuntimeModel()
        query = star_query(6, seed=0)
        plan = MPDP().optimize(query).plan
        assert model.runtime_seconds(plan) > model.startup_seconds

    def test_linear_in_cost_units(self):
        model = CostBasedRuntimeModel(seconds_per_cost_unit=1e-6, startup_seconds=0.0)
        query = star_query(5, seed=1)
        plan = MPDP().optimize(query).plan
        assert model.runtime_seconds(plan) == pytest.approx(plan.cost * 1e-6)


class TestSyntheticDataset:
    def test_rows_scaled_and_capped(self):
        query = star_query(6, seed=2, fact_rows=1e7)
        dataset = SyntheticDataset(query, scale=1e-4, max_rows=500)
        assert dataset.rows(0) == 500  # capped
        for relation in range(query.n_relations):
            assert dataset.rows(relation) >= 2

    def test_pk_fk_columns_reference_valid_keys(self):
        query = star_query(5, seed=3)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=1000)
        for index, edge in enumerate(query.graph.edges):
            column = f"j{index}"
            left = dataset.table(edge.left)[column]
            right = dataset.table(edge.right)[column]
            # FK values must fall inside the PK value range.
            assert min(left.min(), right.min()) >= 0
            assert max(left.max(), right.max()) < max(len(left), len(right))

    def test_every_edge_has_columns_on_both_sides(self):
        query = musicbrainz_query(6, seed=1)
        dataset = SyntheticDataset(query, scale=1e-4, max_rows=2000)
        for index, edge in enumerate(query.graph.edges):
            column = f"j{index}"
            assert column in dataset.table(edge.left)
            assert column in dataset.table(edge.right)

    def test_deterministic_for_seed(self):
        query = chain_query(4, seed=5)
        a = SyntheticDataset(query, seed=7)
        b = SyntheticDataset(query, seed=7)
        for relation in range(query.n_relations):
            for column, values in a.table(relation).items():
                assert (values == b.table(relation)[column]).all()


class TestInMemoryExecutor:
    def test_executes_leaf_plan(self):
        query = chain_query(3, seed=1)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=100)
        executor = InMemoryExecutor(dataset)
        result = executor.execute(query.leaf_plan(0))
        assert result.rows == dataset.rows(0)

    def test_row_count_independent_of_join_order(self):
        """Different plans for the same query must return the same result size."""
        query = musicbrainz_query(6, seed=9)
        dataset = SyntheticDataset(query, scale=1e-4, max_rows=3000)
        executor = InMemoryExecutor(dataset)
        plans = [MPDP().optimize(query).plan,
                 GOO().optimize(query).plan,
                 DPCcp().optimize(query).plan]
        row_counts = {executor.execute(plan).rows for plan in plans}
        assert len(row_counts) == 1

    def test_pk_fk_chain_preserves_fact_rows(self):
        """Joining a fact table to dimension PKs never loses or multiplies rows."""
        query = star_query(4, seed=4, selection_probability=0.0)
        dataset = SyntheticDataset(query, scale=1e-4, max_rows=2000)
        executor = InMemoryExecutor(dataset)
        plan = MPDP().optimize(query).plan
        result = executor.execute(plan)
        assert result.rows == dataset.rows(0)

    def test_wall_time_recorded(self):
        query = chain_query(4, seed=2)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=500)
        result = InMemoryExecutor(dataset).execute(MPDP().optimize(query).plan)
        assert result.wall_time_seconds >= 0.0

    def test_cross_product_plan_rejected(self):
        from repro.core.plan import JoinMethod, join_plan
        query = chain_query(3, seed=3)
        dataset = SyntheticDataset(query, scale=1e-3, max_rows=100)
        executor = InMemoryExecutor(dataset)
        # Relations 0 and 2 of a chain are not joined by any predicate.
        bad = join_plan(query.leaf_plan(0), query.leaf_plan(2), 10, 1.0, JoinMethod.HASH_JOIN)
        with pytest.raises(ValueError):
            executor.execute(bad)
