"""Error-path coverage for the SQL front door and the ``repro-plan`` CLI.

The happy paths are covered by ``test_planner.py`` / ``test_sql_parser.py``;
this module pins the failure behaviour the serving layer depends on:
malformed SQL and catalogs report readable errors (CLI exit code 1, typed
exceptions from ``plan_sql``), unknown backend names and invalid worker
counts are rejected up front, and >62-relation queries quietly degrade the
multicore/vectorized request to the scalar loops instead of failing.
"""

from __future__ import annotations

import json

import pytest

from repro.catalog.schema import Catalog
from repro.exec import ScalarBackend, resolve_backend
from repro.optimizers.base import OptimizationError
from repro.planner.cli import main
from repro.sql import plan_sql, plan_sql_many
from repro.sql.parser import SQLParseError


def _catalog(*tables: str) -> Catalog:
    catalog = Catalog()
    for table in tables:
        catalog.add_table(table, 1e4)
    return catalog


class TestFrontDoorErrors:
    def test_malformed_sql_raises_parse_error(self):
        catalog = _catalog("a", "b")
        for bad in ("",                                   # no FROM clause
                    "select * from",                      # empty table list
                    "select * from a where a.x =",        # dangling predicate
                    "select * from a where x = y",        # unqualified columns
                    "select * from a, b where c.x = b.x"  # unknown alias
                    ):
            with pytest.raises(SQLParseError):
                plan_sql(bad, catalog)

    def test_cross_product_raises_optimization_error(self):
        catalog = _catalog("a", "b")
        with pytest.raises(OptimizationError, match="disconnected"):
            plan_sql("select * from a, b", catalog)

    def test_unknown_backend_name_rejected(self):
        catalog = _catalog("a", "b")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            plan_sql("select * from a, b where a.x = b.x", catalog,
                     backend="simd")

    def test_workers_below_one_rejected(self):
        catalog = _catalog("a", "b")
        with pytest.raises(ValueError, match="positive integer"):
            plan_sql("select * from a, b where a.x = b.x", catalog,
                     workers=0)

    def test_plan_sql_many_propagates_and_isolates_errors(self):
        catalog = _catalog("a", "b", "c")
        good = "select * from a, b where a.x = b.x"
        with pytest.raises(SQLParseError):
            plan_sql_many([good, "selec nonsense"], catalog)
        # A disconnected statement parses but cannot be planned; the batch
        # API surfaces that as OptimizationError (planner's on_error="raise").
        with pytest.raises(OptimizationError):
            plan_sql_many([good, "select * from a, c"], catalog)

    def test_wide_query_multicore_request_runs_natively(self):
        """>62 relations ride multi-word kernel columns: the multicore
        request must resolve to the real backend and produce a plan."""
        n = 65
        tables = [f"t{i}" for i in range(n)]
        catalog = _catalog(*tables)
        predicates = " and ".join(
            f"t0.c{i} = t{i}.c{i}" for i in range(1, n))
        sql = f"select * from {', '.join(tables)} where {predicates}"
        planned = plan_sql(sql, catalog, backend="multicore", workers=2)
        assert planned.outcome.plan is not None
        assert planned.outcome.decision.backend == "multicore"
        from repro.exec.multicore import MulticoreBackend

        query = planned.parsed.query
        assert isinstance(resolve_backend("multicore", query, workers=2),
                          MulticoreBackend)


class TestCLIErrorPaths:
    def test_no_query_given(self, capsys):
        assert main([]) == 2
        assert "provide the query" in capsys.readouterr().err

    def test_both_inline_and_file(self, capsys, tmp_path):
        query_file = tmp_path / "q.sql"
        query_file.write_text("select * from a")
        assert main(["select * from a", "--file", str(query_file)]) == 2

    def test_missing_file(self, capsys):
        assert main(["--file", "/nonexistent/query.sql"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_sql(self, capsys):
        assert main(["select * from a where a.x ="]) == 1
        assert "error:" in capsys.readouterr().err

    def test_cross_product_query(self, capsys):
        assert main(["select * from a, b"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_catalog_json(self, capsys, tmp_path):
        bad_catalog = tmp_path / "catalog.json"
        bad_catalog.write_text("{not json")
        assert main(["select * from a, b where a.x = b.x",
                     "--catalog", str(bad_catalog)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_catalog_spec_type_errors(self, capsys, tmp_path):
        bad_catalog = tmp_path / "catalog.json"
        bad_catalog.write_text(json.dumps({"tables": {"a": {"rows": "many"}}}))
        assert main(["select * from a, b where a.x = b.x",
                     "--catalog", str(bad_catalog)]) == 1
        assert "non-numeric" in capsys.readouterr().err

    def test_unknown_backend_is_an_argparse_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["select * from a, b where a.x = b.x",
                  "--backend", "simd"])
        assert excinfo.value.code == 2

    def test_workers_below_one(self, capsys):
        assert main(["select * from a, b where a.x = b.x",
                     "--workers", "0"]) == 1
        assert "positive integer" in capsys.readouterr().err

    def test_non_integer_workers_is_an_argparse_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["select * from a, b where a.x = b.x",
                  "--workers", "two"])
        assert excinfo.value.code == 2
