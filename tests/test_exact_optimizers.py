"""Correctness tests for the exact optimizers (DPsize, DPsub, DPccp, MPDP).

The central invariants, straight from the paper:

* every exact algorithm finds a plan of the same (optimal) cost;
* every exact algorithm evaluates the same number of *valid* CCP pairs,
  equal to the query's CCP-Counter (Section 2.1);
* DPccp and MPDP:Tree never evaluate an invalid pair; MPDP matches that bound
  on tree join graphs (Theorem 3) and on graphs whose blocks are cliques
  (Lemma 9), and never evaluates more pairs than DPsub (Lemma 7).
"""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitmapset as bms
from repro.core.connectivity import count_ccp_pairs, is_connected
from repro.core.plan import JoinMethod
from repro.optimizers import (
    DPCcp,
    DPE,
    DPSize,
    DPSub,
    EXACT_OPTIMIZERS,
    MPDP,
    MPDPTree,
    OptimizationError,
    PDP,
)
from repro.optimizers.dpccp import enumerate_csg_cmp_pairs
from repro.workloads import (
    chain_query,
    clique_query,
    cycle_query,
    random_connected_query,
    snowflake_query,
    star_query,
)

ALL_EXACT = [DPSize, DPSub, DPCcp, MPDP]


def brute_force_best_cost(query):
    """Exhaustive optimum over all cross-product-free bushy trees (tiny n only)."""
    n = query.n_relations
    best = {}
    for vertex in range(n):
        best[bms.bit(vertex)] = query.leaf_plan(vertex)
    for size in range(2, n + 1):
        for combo in itertools.combinations(range(n), size):
            mask = bms.from_indices(combo)
            if not is_connected(query.graph, mask):
                continue
            best_plan = None
            for left in bms.iter_proper_nonempty_subsets(mask):
                right = mask & ~left
                if left not in best or right not in best:
                    continue
                if not query.graph.is_connected_to(left, right):
                    continue
                plan = query.join(left, right, best[left], best[right])
                if best_plan is None or plan.cost < best_plan.cost:
                    best_plan = plan
            if best_plan is not None:
                best[mask] = best_plan
    return best[query.all_relations_mask].cost


QUERY_MAKERS = [
    ("star", lambda seed: star_query(7, seed=seed)),
    ("snowflake", lambda seed: snowflake_query(8, seed=seed)),
    ("chain", lambda seed: chain_query(7, seed=seed)),
    ("cycle", lambda seed: cycle_query(6, seed=seed)),
    ("clique", lambda seed: clique_query(5, seed=seed)),
    ("random", lambda seed: random_connected_query(7, seed=seed)),
]


class TestOptimality:
    @pytest.mark.parametrize("name,maker", QUERY_MAKERS)
    @pytest.mark.parametrize("optimizer_cls", ALL_EXACT)
    def test_matches_bruteforce_optimum(self, name, maker, optimizer_cls):
        query = maker(seed=11)
        expected = brute_force_best_cost(query)
        result = optimizer_cls().optimize(query)
        assert result.cost == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize("name,maker", QUERY_MAKERS)
    def test_all_algorithms_agree(self, name, maker):
        query = maker(seed=3)
        costs = {cls.__name__: cls().optimize(query).cost for cls in ALL_EXACT}
        reference = next(iter(costs.values()))
        for cost in costs.values():
            assert cost == pytest.approx(reference, rel=1e-9)

    @pytest.mark.parametrize("optimizer_cls", ALL_EXACT)
    def test_two_relation_query(self, optimizer_cls):
        query = chain_query(2, seed=0)
        result = optimizer_cls().optimize(query)
        assert result.plan.n_relations == 2
        assert result.plan.method in JoinMethod.ALL_JOINS

    @pytest.mark.parametrize("optimizer_cls", ALL_EXACT)
    def test_plan_is_valid_and_complete(self, optimizer_cls):
        query = random_connected_query(8, seed=5)
        result = optimizer_cls().optimize(query)
        result.plan.validate()
        assert result.plan.relations == query.all_relations_mask
        assert result.cost == pytest.approx(result.plan.cost)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=4, max_value=7), st.integers(min_value=0, max_value=10_000))
    def test_mpdp_equals_dpccp_on_random_queries(self, n, seed):
        query = random_connected_query(n, extra_edge_probability=0.3, seed=seed)
        mpdp = MPDP().optimize(query)
        dpccp = DPCcp().optimize(query)
        assert mpdp.cost == pytest.approx(dpccp.cost, rel=1e-9)


class TestCounters:
    @pytest.mark.parametrize("name,maker", QUERY_MAKERS)
    def test_ccp_counter_identical_across_algorithms(self, name, maker):
        query = maker(seed=7)
        ground_truth = count_ccp_pairs(query.graph)
        for cls in ALL_EXACT:
            stats = cls().optimize(query).stats
            assert stats.ccp_pairs == ground_truth, cls.__name__

    def test_dpccp_evaluates_only_valid_pairs(self):
        query = random_connected_query(8, seed=2)
        stats = DPCcp().optimize(query).stats
        assert stats.evaluated_pairs == stats.ccp_pairs

    def test_mpdp_tree_meets_lower_bound(self):
        query = snowflake_query(9, seed=1)
        stats = MPDP().optimize(query).stats
        assert stats.evaluated_pairs == stats.ccp_pairs  # Theorem 3

    def test_mpdp_clique_meets_lower_bound(self):
        query = clique_query(5, seed=1)
        stats = MPDP().optimize(query).stats
        assert stats.evaluated_pairs == stats.ccp_pairs  # Lemma 9

    def test_mpdp_never_exceeds_dpsub(self):
        for seed in range(5):
            query = random_connected_query(7, extra_edge_probability=0.4, seed=seed)
            mpdp = MPDP().optimize(query).stats
            dpsub = DPSub().optimize(query).stats
            assert mpdp.evaluated_pairs <= dpsub.evaluated_pairs  # Lemma 7

    def test_dpsub_wastes_pairs_on_star(self):
        query = star_query(8, seed=0)
        dpsub = DPSub().optimize(query).stats
        mpdp = MPDP().optimize(query).stats
        assert dpsub.evaluated_pairs > 3 * mpdp.evaluated_pairs
        assert dpsub.ccp_pairs == mpdp.ccp_pairs

    def test_figure5_block_enumeration_reduction(self):
        """Paper Section 3.2: for the 9-relation cyclic example, the top-level
        set's enumeration drops from 512 (DPsub) to 32 (MPDP) subset probes."""
        from repro.core.joingraph import JoinGraph
        from repro.core.query import QueryInfo

        graph = JoinGraph(9)
        for left, right in [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (4, 8),
                            (8, 5), (8, 6), (5, 6), (6, 7), (5, 7)]:
            graph.add_edge(left, right, 0.5)
        query = QueryInfo(graph, [100.0] * 9)
        mpdp_stats = MPDP().optimize(query).stats
        dpsub_stats = DPSub().optimize(query).stats
        top = 9
        assert dpsub_stats.level_pairs[top] == 2 ** 9 - 2
        # Blocks of the full set have sizes 4, 2, 2, 4 -> at most
        # (2^4-2) + 2 + 2 + (2^4-2) = 32 probes at the top level.
        assert mpdp_stats.level_pairs[top] <= 32
        assert mpdp_stats.level_pairs[top] < dpsub_stats.level_pairs[top]

    def test_level_counters_sum_to_totals(self):
        query = random_connected_query(7, seed=9)
        stats = MPDP().optimize(query).stats
        assert sum(stats.level_pairs.values()) == stats.evaluated_pairs
        assert sum(stats.level_ccp.values()) == stats.ccp_pairs
        assert sum(stats.level_sets.values()) == stats.connected_sets

    def test_memo_contains_every_connected_subset(self):
        query = star_query(6, seed=4)
        result = MPDP().optimize(query)
        expected_sets = sum(math.comb(5, k - 1) for k in range(2, 7)) + 6
        assert len(result.memo) == expected_sets


class TestSubsetOptimization:
    def test_optimize_connected_subset(self):
        query = snowflake_query(9, seed=2)
        subset = 0
        # Take the fact table and its first three neighbours.
        subset = bms.bit(0)
        for vertex in list(bms.iter_bits(query.graph.adjacency(0)))[:3]:
            subset |= bms.bit(vertex)
        full = MPDP().optimize(query, subset=subset)
        assert full.plan.relations == subset
        reference = DPCcp().optimize(query, subset=subset)
        assert full.cost == pytest.approx(reference.cost, rel=1e-9)

    def test_disconnected_subset_rejected(self):
        query = star_query(6, seed=0)
        # Two satellites without the hub are disconnected.
        subset = bms.from_indices([1, 2])
        with pytest.raises(OptimizationError):
            MPDP().optimize(query, subset=subset)

    def test_empty_and_foreign_subsets_rejected(self):
        query = star_query(5, seed=0)
        with pytest.raises(OptimizationError):
            MPDP().optimize(query, subset=0)
        with pytest.raises(OptimizationError):
            MPDP().optimize(query, subset=bms.bit(10))

    def test_singleton_subset(self):
        query = star_query(5, seed=0)
        result = MPDP().optimize(query, subset=bms.bit(2))
        assert result.plan.is_leaf
        assert result.plan.relation_index == 2


class TestSpecialisedVariants:
    def test_mpdp_tree_rejects_cyclic_graph(self):
        query = cycle_query(5, seed=0)
        with pytest.raises(OptimizationError):
            MPDPTree().optimize(query)

    def test_mpdp_tree_matches_mpdp_on_trees(self):
        query = snowflake_query(9, seed=8)
        tree_result = MPDPTree().optimize(query)
        general_result = MPDP().optimize(query)
        assert tree_result.cost == pytest.approx(general_result.cost, rel=1e-9)
        assert tree_result.stats.ccp_pairs == general_result.stats.ccp_pairs
        assert tree_result.stats.evaluated_pairs == tree_result.stats.ccp_pairs

    def test_pdp_and_dpe_share_plans_with_their_bases(self):
        query = star_query(7, seed=6)
        assert PDP().optimize(query).cost == pytest.approx(DPSize().optimize(query).cost)
        assert DPE().optimize(query).cost == pytest.approx(DPCcp().optimize(query).cost)

    def test_dpsub_unrank_filter_mode(self):
        query = star_query(6, seed=1)
        direct = DPSub(unrank_filter=False).optimize(query)
        unranked = DPSub(unrank_filter=True).optimize(query)
        assert direct.cost == pytest.approx(unranked.cost)
        assert unranked.stats.sets_considered >= direct.stats.sets_considered
        # The unrank-and-filter mode looks at every combination per level.
        expected_considered = sum(math.comb(6, k) for k in range(2, 7))
        assert unranked.stats.sets_considered == expected_considered

    def test_registry_contains_all_algorithms(self):
        assert set(EXACT_OPTIMIZERS) == {
            "DPsize", "DPsub", "DPccp", "PDP", "DPE", "MPDP", "MPDP:Tree"}
        for name, cls in EXACT_OPTIMIZERS.items():
            assert cls().name == name


class TestCsgCmpEnumeration:
    @pytest.mark.parametrize("name,maker", QUERY_MAKERS)
    def test_each_unordered_pair_emitted_once(self, name, maker):
        query = maker(seed=13)
        pairs = list(enumerate_csg_cmp_pairs(query, query.all_relations_mask))
        unordered = {frozenset((left, right)) for left, right in pairs}
        assert len(unordered) == len(pairs)
        assert 2 * len(pairs) == count_ccp_pairs(query.graph)

    def test_every_emitted_pair_is_valid(self):
        query = random_connected_query(7, extra_edge_probability=0.3, seed=21)
        for left, right in enumerate_csg_cmp_pairs(query, query.all_relations_mask):
            assert left & right == 0
            assert is_connected(query.graph, left)
            assert is_connected(query.graph, right)
            assert query.graph.is_connected_to(left, right)
