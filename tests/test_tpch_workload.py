"""Tests for the TPC-H style workload (the paper's Figure 1 schema)."""

import pytest

from repro.core.connectivity import is_connected
from repro.optimizers import DPCcp, MPDP
from repro.workloads import build_tpch_catalog, figure1_query, tpch_join_query


class TestCatalog:
    def test_eight_tables_with_primary_keys(self):
        catalog = build_tpch_catalog()
        assert len(catalog) == 8
        assert catalog.table("lineitem").rows == pytest.approx(6_001_215)
        assert all(table.primary_key is not None for table in catalog)

    def test_scale_factor(self):
        small = build_tpch_catalog(scale_factor=0.1)
        assert small.table("orders").rows == pytest.approx(150_000)
        # Fixed-size tables do not scale.
        assert small.table("nation").rows == 25
        with pytest.raises(ValueError):
            build_tpch_catalog(scale_factor=0)

    def test_pk_fk_metadata(self):
        catalog = build_tpch_catalog()
        assert catalog.is_pk_fk_join("lineitem", "l_orderkey", "orders", "o_orderkey")
        assert catalog.is_pk_fk_join("orders", "o_custkey", "customer", "c_custkey")


class TestFigure1Query:
    def test_join_graph_shape(self):
        query = figure1_query()
        assert query.n_relations == 4
        assert query.graph.n_edges == 3
        names = query.graph.relation_names
        lineitem = names.index("lineitem")
        # lineitem is the centre: it joins orders and part; orders joins customer.
        assert query.graph.degree(lineitem) == 2

    def test_optimizers_agree_on_figure1(self):
        query = figure1_query()
        mpdp = MPDP().optimize(query)
        dpccp = DPCcp().optimize(query)
        assert mpdp.cost == pytest.approx(dpccp.cost, rel=1e-9)
        mpdp.plan.validate()


class TestGeneratedQueries:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_connected_and_sized(self, n):
        query = tpch_join_query(n, seed=1)
        assert query.n_relations == n
        assert is_connected(query.graph, query.all_relations_mask)
        assert "lineitem" in query.graph.relation_names

    def test_deterministic(self):
        a = tpch_join_query(6, seed=3)
        b = tpch_join_query(6, seed=3)
        assert a.graph.relation_names == b.graph.relation_names

    def test_size_validation(self):
        with pytest.raises(ValueError):
            tpch_join_query(1)
        with pytest.raises(ValueError):
            tpch_join_query(9)
