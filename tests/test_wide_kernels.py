"""Unit tests for the multi-word bitset column layer.

:mod:`repro.core.widebitmap` is the width generalisation that dropped the
62-relation kernel lane ceiling: vertex-set batches as ``(m, k)`` uint64
matrices, with identity and bit-remap layouts.  The integration suites
(``test_exec_backends``, the differential fuzzer's wide band) prove the
backends agree end to end; this file pins the column algebra itself —
round-trips, layout specs, run decomposition, sort keys, popcounts — at
every interesting width, against arbitrary-precision int references.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import repro.core.widebitmap as wb
from repro.core.widebitmap import _remap_runs

#: Widths around every lane edge: sub-word, the retired 62 ceiling, the
#: one-word roll-over, and the two/three-word boundary.
BOUNDARY_WIDTHS = (1, 7, 62, 63, 64, 65, 127, 128, 129, 200)


def random_masks(n_bits: int, count: int, seed: int):
    rng = random.Random(seed)
    return [rng.getrandbits(n_bits) for _ in range(count)]


def random_spec(n_bits: int, size: int, seed: int):
    rng = random.Random(seed)
    return tuple(sorted(rng.sample(range(n_bits), size)))


# --------------------------------------------------------------------- #
# Width policy
# --------------------------------------------------------------------- #
def test_words_for_boundaries():
    assert wb.words_for(0) == 1
    assert wb.words_for(-3) == 1
    assert wb.words_for(1) == 1
    assert wb.words_for(64) == 1
    assert wb.words_for(65) == 2
    assert wb.words_for(128) == 2
    assert wb.words_for(129) == 3
    assert wb.words_for(1000) == 16


def test_view_for_identity_when_narrow():
    # One-word universes never remap: the identity layout is already minimal.
    assert wb.view_for(0b1010, 10) == 1
    assert wb.view_for((1 << 64) - 1, 64) == 1


def test_view_for_remap_only_when_it_saves_words():
    n = 200
    # A 16-relation fragment of a 200-relation graph: remap to one word.
    scope = sum(1 << p for p in range(100, 116))
    spec = wb.view_for(scope, n)
    assert spec == tuple(range(100, 116))
    # A scope spanning nearly everything saves nothing: identity.
    wide_scope = (1 << n) - 1
    assert wb.view_for(wide_scope, n) == wb.words_for(n)
    # Empty scope degenerates to one identity word.
    assert wb.view_for(0, n) == 1


def test_spec_words_and_bits():
    assert wb.spec_words(3) == 3
    assert wb.spec_bits(3) == 192
    spec = tuple(range(10, 80))
    assert wb.spec_words(spec) == 2
    assert wb.spec_bits(spec) == 70


# --------------------------------------------------------------------- #
# compact / expand
# --------------------------------------------------------------------- #
def test_compact_expand_roundtrip_and_order():
    spec = random_spec(150, 40, seed=3)
    scope = sum(1 << p for p in spec)
    masks = [m & scope for m in random_masks(150, 50, seed=4)]
    compacts = [wb.compact(m, spec) for m in masks]
    assert [wb.expand(c, spec) for c in compacts] == masks
    # Ascending positions map to ascending packed values.
    assert sorted(compacts) == [wb.compact(m, spec) for m in sorted(masks)]


def test_compact_identity_spec_is_noop():
    assert wb.compact(0b1011, 4) == 0b1011
    assert wb.expand(0b1011, 4) == 0b1011


# --------------------------------------------------------------------- #
# _remap_runs
# --------------------------------------------------------------------- #
def test_remap_runs_contiguous_scope_collapses():
    # A contiguous in-word scope is a single shift-and-mask run.
    assert _remap_runs(tuple(range(100, 116))) == [(1, 36, 0, 0, 16)]


def test_remap_runs_split_at_word_boundaries():
    # Source bits 60..67 straddle words 0/1: the run must break at bit 64.
    runs = _remap_runs(tuple(range(60, 68)))
    assert runs == [(0, 60, 0, 0, 4), (1, 0, 0, 4, 4)]


def test_remap_runs_cover_every_bit_exactly_once():
    spec = random_spec(300, 90, seed=11)
    covered = []
    for source_word, source_offset, dest_word, dest_offset, length \
            in _remap_runs(spec):
        assert 0 < length <= wb.WORD_BITS
        assert source_offset + length <= wb.WORD_BITS
        assert dest_offset + length <= wb.WORD_BITS
        for i in range(length):
            covered.append((64 * source_word + source_offset + i,
                            64 * dest_word + dest_offset + i))
    assert [src for src, _ in covered] == list(spec)
    assert [dst for _, dst in covered] == list(range(len(spec)))


# --------------------------------------------------------------------- #
# pack / unpack round trips
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("n_bits", BOUNDARY_WIDTHS)
def test_identity_pack_roundtrip(n_bits):
    masks = random_masks(n_bits, 64, seed=n_bits) + [0, (1 << n_bits) - 1]
    words = wb.words_for(n_bits)
    column = wb.pack(masks, words)
    assert column.shape == (len(masks), words)
    assert column.dtype == np.uint64
    assert wb.unpack(column) == masks
    # Word w is exactly mask >> (64 * w).
    for word in range(words):
        expected = [(mask >> (64 * word)) & wb.WORD_MASK for mask in masks]
        assert column[:, word].tolist() == expected


@pytest.mark.parametrize("n_bits", (65, 129, 200, 1000))
def test_remap_pack_roundtrip(n_bits):
    for seed in range(3):
        spec = random_spec(n_bits, min(50, n_bits // 2), seed=seed)
        scope = sum(1 << p for p in spec)
        masks = [m & scope for m in random_masks(n_bits, 40, seed=seed + 7)]
        column = wb.pack(masks, spec)
        assert column.shape == (len(masks), wb.words_for(len(spec)))
        assert wb.unpack(column, spec) == masks
        # Packed values equal the per-mask compact() reference.
        assert wb.unpack(column) == [wb.compact(m, spec) for m in masks]


def test_pack_one_unpack_one_roundtrip():
    for n_bits in (30, 65, 129):
        mask = random_masks(n_bits, 1, seed=n_bits)[0]
        words = wb.words_for(n_bits)
        row = wb.pack_one(mask, words)
        assert row.shape == (words,)
        assert wb.unpack_one(row) == mask
    spec = tuple(range(70, 100))
    mask = sum(1 << p for p in range(70, 100, 3))
    row = wb.pack_one(mask, spec)
    assert wb.unpack_one(row, spec) == mask


def test_pack_empty_batch():
    assert wb.pack([], 2).shape == (0, 2)
    assert wb.unpack(wb.pack([], 2)) == []
    spec = tuple(range(10, 90))
    assert wb.pack([], spec).shape == (0, 2)
    assert wb.unpack(wb.pack([], spec), spec) == []


# --------------------------------------------------------------------- #
# gather_bits
# --------------------------------------------------------------------- #
def test_gather_bits_matches_per_bit_reference():
    n_bits = 190
    masks = random_masks(n_bits, 60, seed=21)
    column = wb.pack(masks, wb.words_for(n_bits))
    for seed in range(3):
        positions = random_spec(n_bits, 70, seed=seed + 31)
        gathered = wb.gather_bits(column, positions)
        assert gathered.shape == (len(masks), wb.words_for(len(positions)))
        expected = [wb.compact(mask, positions) for mask in masks]
        assert wb.unpack(gathered) == expected


# --------------------------------------------------------------------- #
# sort keys, popcounts, membership helpers
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("n_bits", (40, 64, 65, 129, 200))
def test_sort_keys_order_equals_numeric_order(n_bits):
    masks = random_masks(n_bits, 100, seed=n_bits + 1)
    column = wb.pack(masks, wb.words_for(n_bits))
    keys = wb.sort_keys(column)
    order = np.argsort(keys, kind="stable")
    assert [masks[i] for i in order] == sorted(masks)
    # searchsorted probes agree with exact membership.
    sorted_keys = keys[order]
    probe = wb.sort_keys(wb.pack([masks[0], (1 << n_bits) - 1],
                                 wb.words_for(n_bits)))
    found = sorted_keys[np.minimum(np.searchsorted(sorted_keys, probe),
                                   len(masks) - 1)] == probe
    assert bool(found[0])


@pytest.mark.parametrize("n_bits", (40, 65, 129))
def test_popcount_rows(n_bits):
    masks = random_masks(n_bits, 80, seed=n_bits + 5) + [0, (1 << n_bits) - 1]
    column = wb.pack(masks, wb.words_for(n_bits))
    assert wb.popcount_rows(column).tolist() == \
        [mask.bit_count() for mask in masks]


def test_any_bits():
    column = wb.pack([0, 1, 1 << 100, 0], wb.words_for(128))
    assert wb.any_bits(column).tolist() == [False, True, True, False]


def test_bit_positions_wide():
    n_bits, k = 130, 4
    rng = random.Random(9)
    masks = [sum(1 << p for p in rng.sample(range(n_bits), k))
             for _ in range(30)]
    column = wb.pack(masks, wb.words_for(n_bits))
    positions = wb.bit_positions(column, k, n_bits)
    for row, mask in zip(positions.tolist(), masks):
        assert row == sorted(p for p in range(n_bits) if (mask >> p) & 1)


def test_one_hot_words():
    positions = np.array([0, 63, 64, 129])
    out = wb.one_hot_words(positions, 3)
    assert out.shape == (4, 3)
    values = [wb.unpack_one(row) for row in out]
    assert values == [1 << 0, 1 << 63, 1 << 64, 1 << 129]


# --------------------------------------------------------------------- #
# Snapshot / SnapshotBuilder on wide graphs
# --------------------------------------------------------------------- #
def test_wide_snapshot_lookup_one():
    vectorized = pytest.importorskip("repro.exec.vectorized")
    n_bits = 130
    masks = sorted(set(random_masks(n_bits, 50, seed=41)))
    words = wb.words_for(n_bits)
    column = wb.pack(masks, words)
    zeros = np.zeros(len(masks), dtype=np.float64)
    snapshot = vectorized.Snapshot(column, zeros, zeros,
                                   np.zeros_like(column))
    for mask in masks[:5] + masks[-5:]:
        index, found = snapshot.lookup_one(mask)
        assert found and wb.unpack_one(snapshot.masks[index]) == mask
    absent = (masks[0] + 1) if (masks[0] + 1) not in set(masks) else 0
    _, found = snapshot.lookup_one(absent)
    assert not found


def test_builder_absorb_and_fallback():
    """absorb() hands packed winner columns to the next refresh; any
    coverage mismatch (interleaved scalar put) falls back to int packing."""
    vectorized = pytest.importorskip("repro.exec.vectorized")
    from repro.core.arena import PlanArena
    from repro.cost.cout import CoutCostModel
    from repro.workloads import chain_query

    query = chain_query(70, seed=1, cost_model=CoutCostModel())
    builder = vectorized.SnapshotBuilder(query.graph)
    arena = PlanArena(query)
    for vertex in range(query.n_relations):
        arena.put(1 << vertex, query.leaf_plan(vertex))
    snapshot = builder.refresh(arena)
    assert wb.unpack(snapshot.masks) == sorted(1 << v
                                               for v in range(70))

    # A recorded level whose packed column was absorbed: no re-pack needed,
    # and the refreshed snapshot contains exactly the new masks.
    pairs = [(1 << v) | (1 << (v + 1)) for v in range(0, 60, 2)]
    column = wb.pack(pairs, builder.spec)
    arena.record_level(pairs,
                       [1.0] * len(pairs), [1.0] * len(pairs),
                       [1 << v for v in range(0, 60, 2)],
                       [1 << (v + 1) for v in range(0, 60, 2)], size=2)
    builder.absorb(column)
    snapshot = builder.refresh(arena)
    assert set(wb.unpack(snapshot.masks)) == \
        set(1 << v for v in range(70)) | set(pairs)

    # Interleaved put => pending no longer covers the suffix => fallback.
    triple = 0b111 << 64
    arena.record_level([triple], [2.0], [2.0], [0b11 << 64], [1 << 66],
                       size=3)
    builder.absorb(wb.pack([triple], builder.spec))
    arena.put(0b11, query.join(0b01, 0b10, arena[0b01], arena[0b10]))
    snapshot = builder.refresh(arena)
    unpacked = set(wb.unpack(snapshot.masks))
    assert triple in unpacked and 0b11 in unpacked
