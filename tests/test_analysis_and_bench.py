"""Tests for the analytic counter formulas, the bench harness and AWS pricing."""

import pytest

from repro.analysis import (
    chain_ccp_pairs,
    clique_ccp_pairs,
    clique_connected_subsets,
    clique_dpsub_evaluated_pairs,
    star_ccp_pairs,
    star_connected_subsets,
    star_dpsub_evaluated_pairs,
    star_mpdp_evaluated_pairs,
)
from repro.bench import (
    AWS_INSTANCES,
    RelativeCostTable,
    SeriesResult,
    TimedRun,
    instance_for_algorithm,
    optimization_cost_cents,
    percentile,
    run_relative_cost_table,
    run_time_series,
    wall_time_seconds,
)
from repro.core.connectivity import count_ccp_pairs, count_connected_subsets
from repro.heuristics import GOO, IKKBZ
from repro.optimizers import DPSub, MPDP
from repro.workloads import chain_query, clique_query, snowflake_query, star_query


class TestAnalyticFormulas:
    @pytest.mark.parametrize("n", [3, 5, 8, 10])
    def test_star_ccp_matches_instrumented_count(self, n):
        query = star_query(n, seed=0)
        assert star_ccp_pairs(n) == count_ccp_pairs(query.graph)

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_star_connected_subsets_match(self, n):
        query = star_query(n, seed=0)
        for size in range(1, n + 1):
            assert star_connected_subsets(n, size) == count_connected_subsets(query.graph, size)

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_star_dpsub_evaluated_matches_instrumented_run(self, n):
        query = star_query(n, seed=1)
        stats = DPSub().optimize(query).stats
        assert star_dpsub_evaluated_pairs(n) == stats.evaluated_pairs

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_star_mpdp_meets_lower_bound(self, n):
        query = star_query(n, seed=1)
        stats = MPDP().optimize(query).stats
        assert star_mpdp_evaluated_pairs(n) == stats.evaluated_pairs == stats.ccp_pairs

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_chain_formula(self, n):
        assert chain_ccp_pairs(n) == count_ccp_pairs(chain_query(n, seed=0).graph)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_clique_formulas(self, n):
        query = clique_query(n, seed=0)
        assert clique_ccp_pairs(n) == count_ccp_pairs(query.graph)
        assert clique_dpsub_evaluated_pairs(n) == DPSub().optimize(query).stats.evaluated_pairs
        for size in range(1, n + 1):
            assert clique_connected_subsets(n, size) == count_connected_subsets(query.graph, size)

    def test_figure4_gap_grows_with_query_size(self):
        ratios = [star_dpsub_evaluated_pairs(n) / star_ccp_pairs(n) for n in range(5, 26, 5)]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        # At 25 relations the gap is in the thousands (Figure 4 reports ~2800x
        # against unordered CCP pairs; ordered-pair normalisation halves it).
        assert ratios[-1] > 1000

    def test_out_of_range_sizes(self):
        assert star_connected_subsets(5, 0) == 0
        assert star_connected_subsets(5, 6) == 0
        assert clique_connected_subsets(4, 9) == 0


class TestPercentile:
    def test_simple_values(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSeriesResult:
    def test_add_and_lookup(self):
        series = SeriesResult(title="demo")
        series.add(TimedRun("A", 5, 0.01))
        series.add(TimedRun("B", 5, None, timed_out=True))
        assert series.algorithms() == ["A", "B"]
        assert series.sizes() == [5]
        assert series.value("A", 5).seconds == 0.01
        assert series.value("B", 5).timed_out
        assert series.value("C", 5) is None

    def test_render_table(self):
        series = SeriesResult(title="demo")
        series.add(TimedRun("A", 5, 0.010))
        series.add(TimedRun("A", 6, 0.020))
        series.add(TimedRun("B", 6, None, timed_out=True))
        text = series.to_table(unit="ms")
        assert "demo" in text
        assert "10.000" in text
        assert "timeout" in text


class TestRelativeCostTable:
    def test_statistics(self):
        table = RelativeCostTable(title="t")
        for value in (1.0, 1.5, 2.0):
            table.add("X", 30, value)
        assert table.average("X", 30) == pytest.approx(1.5)
        assert table.percentile95("X", 30) == pytest.approx(1.95)
        assert table.average("X", 40) is None
        assert "X" in table.to_table()


class TestHarnessRuns:
    def test_run_time_series_small(self):
        optimizers = [
            ("MPDP", MPDP, wall_time_seconds),
            ("DPsub", DPSub, wall_time_seconds),
        ]
        series = run_time_series(
            "tiny star sweep",
            lambda n, seed: star_query(n, seed=seed),
            sizes=[4, 6],
            optimizers=optimizers,
            queries_per_size=2,
            timeout_seconds=60.0,
        )
        assert series.sizes() == [4, 6]
        for algorithm in ("MPDP", "DPsub"):
            for size in (4, 6):
                run = series.value(algorithm, size)
                assert run is not None and not run.timed_out
                assert run.seconds >= 0

    def test_run_time_series_timeout_propagates(self):
        optimizers = [("MPDP", MPDP, wall_time_seconds)]
        series = run_time_series(
            "timeout demo",
            lambda n, seed: star_query(n, seed=seed),
            sizes=[5, 6, 7],
            optimizers=optimizers,
            queries_per_size=1,
            timeout_seconds=0.0,   # everything times out immediately
        )
        assert not series.value("MPDP", 5).timed_out  # first size still reported
        assert series.value("MPDP", 6).timed_out
        assert series.value("MPDP", 7).timed_out

    def test_run_relative_cost_table(self):
        table = run_relative_cost_table(
            "tiny heuristic table",
            lambda n, seed: snowflake_query(n, seed=seed),
            sizes=[10],
            optimizers=[("GOO", GOO), ("IKKBZ", IKKBZ), ("MPDP", MPDP)],
            queries_per_size=2,
        )
        for algorithm in ("GOO", "IKKBZ", "MPDP"):
            assert table.average(algorithm, 10) >= 1.0
        # The exact algorithm defines the best plan, so its ratio is 1.
        assert table.average("MPDP", 10) == pytest.approx(1.0)


class TestPricing:
    def test_known_instances(self):
        assert set(AWS_INSTANCES) == {"c5.large", "c5.xlarge", "g4dn.xlarge"}
        assert AWS_INSTANCES["g4dn.xlarge"].has_gpu

    def test_instance_routing(self):
        assert instance_for_algorithm("MPDP (GPU)").name == "g4dn.xlarge"
        assert instance_for_algorithm("DPE (24CPU)").name == "c5.xlarge"
        assert instance_for_algorithm("Postgres (1CPU)").name == "c5.large"
        assert instance_for_algorithm("DPccp (1CPU)").name == "c5.large"

    def test_cost_computation(self):
        instance = AWS_INSTANCES["c5.large"]
        cents = optimization_cost_cents(3600.0, instance)
        assert cents == pytest.approx(instance.price_per_hour_usd * 100)
        with pytest.raises(ValueError):
            optimization_cost_cents(-1.0, instance)
