"""Multicore kernel backend: sharded worker execution, pinned bit-identical.

The multicore backend's contract is the same as the vectorized one's —
*bit-identity* with the scalar reference — plus process mechanics: shards
are contiguous, shared-memory segments are unlinked after every level,
worker pools are cached and survive errors, and the break-even gate keeps
small levels in-process.  These tests pin all of it, including the
fig04/06-09 workloads for workers ∈ {1, 2, 4} (the acceptance matrix) and
the per-run hoist of derived kernel state (`KernelState.cache` /
EnumerationContext cache-miss caps).

Worker-spawning tests carry the ``multicore`` marker; deselect with
``-m "not multicore"`` on constrained runners.
"""

from __future__ import annotations

import glob
import os
import time

import numpy as np
import pytest

import repro.exec.multicore as mc
from repro.core.arena import PlanArena
from repro.core.enumeration import EnumerationContext
from repro.core.joingraph import JoinGraph
from repro.core.query import QueryInfo
from repro.cost.cout import CoutCostModel
from repro.exec import BACKEND_NAMES, ScalarBackend, resolve_backend
from repro.exec.backend import AUTO_MULTICORE_MIN_RELATIONS
from repro.exec.multicore import (
    MulticoreBackend,
    available_workers,
    shutdown_worker_pools,
)
from repro.exec.vectorized import SnapshotBuilder, VectorizedBackend
from repro.optimizers import DPSize, DPSub, MPDP
from repro.optimizers.mpdp import MPDPTree
from repro.planner import DEFAULT_REGISTRY, AdaptivePlanner
from repro.workloads import (
    clique_query,
    musicbrainz_query,
    random_connected_query,
    snowflake_query,
    star_query,
)

WORKLOAD_FACTORIES = {
    "fig04_star_n10_seed1": lambda: star_query(10, seed=1),
    "fig06_star_n10_seed0": lambda: star_query(10, seed=0),
    "fig07_snowflake_n12_seed0": lambda: snowflake_query(12, seed=0),
    "fig08_clique_n9_seed0": lambda: clique_query(9, seed=0),
    "fig09_musicbrainz_n13_seed0": lambda: musicbrainz_query(13, seed=0),
}

TREE_WORKLOADS = ("fig04_star_n10_seed1", "fig06_star_n10_seed0",
                  "fig07_snowflake_n12_seed0")

COUNTER_FIELDS = ("evaluated_pairs", "ccp_pairs", "sets_considered",
                  "connected_sets", "level_sets", "level_considered",
                  "level_pairs", "level_ccp", "memo_entries")

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture
def force_sharding(monkeypatch):
    """Drop the break-even gate so the IPC path runs even on small levels.

    Without this, test-sized queries would legitimately route every level
    through the in-process kernels and the worker path would go untested.
    """
    monkeypatch.setattr(mc, "MULTICORE_MIN_TARGETS", 1)
    monkeypatch.setattr(mc, "MULTICORE_MIN_WORK", 1)


def assert_equivalent(scalar_result, multicore_result):
    """The full bit-identity contract between two PlanResults."""
    assert multicore_result.cost == scalar_result.cost
    assert multicore_result.plan == scalar_result.plan
    for field in COUNTER_FIELDS:
        assert getattr(multicore_result.stats, field) == \
            getattr(scalar_result.stats, field), field
    scalar_items = list(scalar_result.memo.items())
    multicore_items = list(multicore_result.memo.items())
    assert [k for k, _ in multicore_items] == [k for k, _ in scalar_items]
    for (_, scalar_plan), (_, mc_plan) in zip(scalar_items, multicore_items):
        assert mc_plan.cost == scalar_plan.cost


@pytest.mark.multicore
class TestMulticoreBitIdentity:
    """Acceptance matrix: fig workloads x workers in {1, 2, 4}."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_FACTORIES))
    def test_mpdp_bit_identical(self, workload, workers, force_sharding):
        make = WORKLOAD_FACTORIES[workload]
        scalar = MPDP(backend="scalar").optimize(make())
        multicore = MPDP(backend="multicore", workers=workers).optimize(make())
        assert isinstance(multicore.memo, PlanArena)
        assert_equivalent(scalar, multicore)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_dpsub_bit_identical(self, workers, force_sharding):
        make = WORKLOAD_FACTORIES["fig09_musicbrainz_n13_seed0"]
        scalar = DPSub(backend="scalar").optimize(make())
        multicore = DPSub(backend="multicore", workers=workers).optimize(make())
        assert_equivalent(scalar, multicore)

    @pytest.mark.parametrize("workload", TREE_WORKLOADS)
    def test_mpdp_tree_bit_identical(self, workload, force_sharding):
        make = WORKLOAD_FACTORIES[workload]
        scalar = MPDPTree(backend="scalar").optimize(make())
        multicore = MPDPTree(backend="multicore", workers=2).optimize(make())
        assert_equivalent(scalar, multicore)

    def test_dpsize_bit_identical(self, force_sharding):
        # DPsize levels run in-process by design; the backend knob must
        # still produce bit-identical results end to end.
        make = WORKLOAD_FACTORIES["fig08_clique_n9_seed0"]
        scalar = DPSize(backend="scalar").optimize(make())
        multicore = DPSize(backend="multicore", workers=2).optimize(make())
        assert_equivalent(scalar, multicore)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_cyclic_topologies(self, seed, force_sharding):
        for density in (0.15, 0.5):
            make = lambda: random_connected_query(  # noqa: E731
                9, extra_edge_probability=density, seed=seed)
            scalar = MPDP(backend="scalar").optimize(make())
            multicore = MPDP(backend="multicore", workers=3).optimize(make())
            assert_equivalent(scalar, multicore)

    def test_fragment_scope_bit_identical(self, force_sharding):
        make = lambda: musicbrainz_query(13, seed=0)  # noqa: E731
        query_a, query_b = make(), make()
        fragment = next(iter(
            EnumerationContext.of(query_a.graph).connected_subsets(8)))
        scalar = MPDP(backend="scalar").optimize(query_a, subset=fragment)
        multicore = MPDP(backend="multicore", workers=2).optimize(
            query_b, subset=fragment)
        assert_equivalent(scalar, multicore)

    def test_cout_model_bit_identical(self, force_sharding):
        make = lambda: clique_query(9, seed=0, cost_model=CoutCostModel())  # noqa: E731
        scalar = MPDP(backend="scalar").optimize(make())
        multicore = MPDP(backend="multicore", workers=4).optimize(make())
        assert_equivalent(scalar, multicore)


@pytest.mark.multicore
class TestShardMechanics:
    def test_shard_bounds_contiguous_cover(self):
        for n_items in (1, 5, 7, 100):
            for n_shards in (1, 2, 3, 7):
                if n_shards > n_items:
                    continue
                bounds = mc._shard_bounds(n_items, n_shards)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_items
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start  # contiguous, no gaps or overlap
                sizes = [stop - start for start, stop in bounds]
                assert max(sizes) - min(sizes) <= 1  # near-equal

    def test_pool_reuse_across_runs(self, force_sharding):
        make = lambda: star_query(10, seed=0)  # noqa: E731
        MPDP(backend="multicore", workers=2).optimize(make())
        pool = mc._POOLS.get(2)
        assert pool is not None and pool.alive
        MPDP(backend="multicore", workers=2).optimize(make())
        assert mc._POOLS.get(2) is pool  # same processes, no respawn

    def test_no_leaked_shared_memory(self, force_sharding):
        MPDP(backend="multicore", workers=2).optimize(
            musicbrainz_query(12, seed=3))
        leaked = glob.glob(f"/dev/shm/{mc._SEGMENT_PREFIX}*")
        assert leaked == []

    def test_worker_error_propagates_and_pool_survives(self):
        pool = mc._pool_for(2)
        segment, meta = mc._publish_arrays(
            {"masks": np.array([1], dtype=np.int64)})
        try:
            task = {"kind": "bogus", "segment": segment.name, "meta": meta,
                    "start": 0, "stop": 0, "model": None, "n_bits": 1}
            with pytest.raises(RuntimeError, match="multicore worker failed"):
                pool.run_tasks([task, dict(task)])
        finally:
            segment.close()
            segment.unlink()
        assert pool.alive  # errors are per-task, not pool-fatal

    def test_concurrent_threads_share_pool_safely(self, force_sharding):
        """A shared AdaptivePlanner may serve concurrent threads; the pool
        must serialize each level's send/recv exchange or threads would
        collect each other's shard payloads."""
        import threading

        make_a = lambda: musicbrainz_query(12, seed=5)  # noqa: E731
        make_b = lambda: clique_query(8, seed=1)  # noqa: E731
        expected_a = MPDP(backend="scalar").optimize(make_a()).cost
        expected_b = MPDP(backend="scalar").optimize(make_b()).cost
        errors = []

        def run(make, expected):
            try:
                for _ in range(3):
                    result = MPDP(backend="multicore", workers=2).optimize(make())
                    assert result.cost == expected
            except BaseException as exc:  # noqa: BLE001 - collected for report
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(make_a, expected_a)),
                   threading.Thread(target=run, args=(make_b, expected_b))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_shutdown_is_idempotent_and_rebuilds(self, force_sharding):
        shutdown_worker_pools()
        shutdown_worker_pools()
        assert mc._POOLS == {}
        result = MPDP(backend="multicore", workers=2).optimize(
            star_query(10, seed=0))
        assert result.cost == MPDP(backend="scalar").optimize(
            star_query(10, seed=0)).cost


class TestBreakEvenGating:
    def test_small_levels_stay_in_process(self, monkeypatch):
        """Below break-even, the multicore backend must never touch a pool."""
        def forbid(_workers):
            raise AssertionError("worker pool requested below break-even")

        monkeypatch.setattr(mc, "_pool_for", forbid)
        scalar = MPDP(backend="scalar").optimize(star_query(9, seed=2))
        multicore = MPDP(backend="multicore", workers=4).optimize(
            star_query(9, seed=2))
        assert_equivalent(scalar, multicore)

    def test_gate_thresholds(self):
        backend = MulticoreBackend(workers=4)
        assert not backend._should_shard(mc.MULTICORE_MIN_TARGETS - 1, 1 << 20)
        assert not backend._should_shard(1 << 20, 0)
        assert backend._should_shard(mc.MULTICORE_MIN_TARGETS,
                                     mc.MULTICORE_MIN_WORK)


class TestResolutionAndKnobs:
    def test_backend_names_include_multicore(self):
        assert "multicore" in BACKEND_NAMES

    def test_resolve_multicore(self):
        query = star_query(5, seed=0)
        backend = resolve_backend("multicore", query, workers=3)
        assert isinstance(backend, MulticoreBackend)
        assert backend.workers == 3

    def test_available_workers(self):
        assert available_workers(5) == 5
        assert available_workers(None) >= 1
        with pytest.raises(ValueError, match="positive integer"):
            available_workers(0)

    def test_workers_validation(self):
        query = star_query(5, seed=0)
        with pytest.raises(ValueError, match="positive integer"):
            resolve_backend("multicore", query, workers=0)
        with pytest.raises(ValueError, match="positive integer"):
            MPDP(backend="multicore", workers=-1)
        with pytest.raises(ValueError, match="positive integer"):
            AdaptivePlanner(workers=0)

    def test_wide_graphs_shard_natively(self):
        """>62-relation masks ride multi-word bitmap columns: a multicore
        request on a wide graph resolves to the real sharded backend."""
        graph = JoinGraph(70)
        for vertex in range(1, 70):
            graph.add_edge(0, vertex, selectivity=1e-3)
        query = QueryInfo(graph, [1e3] * 70)
        assert isinstance(resolve_backend("multicore", query, workers=4),
                          MulticoreBackend)

    def test_auto_escalates_to_multicore_on_big_machines(self, monkeypatch):
        import repro.exec.backend as backend_module

        monkeypatch.setattr(backend_module, "_available_cpus", lambda: 8)
        large = musicbrainz_query(AUTO_MULTICORE_MIN_RELATIONS, seed=0)
        assert isinstance(resolve_backend("auto", large), MulticoreBackend)
        # Below the relation gate: vectorized.
        medium = musicbrainz_query(AUTO_MULTICORE_MIN_RELATIONS - 1, seed=0)
        assert isinstance(resolve_backend("auto", medium), VectorizedBackend)

    def test_auto_never_multicore_on_single_cpu(self, monkeypatch):
        import repro.exec.backend as backend_module

        monkeypatch.setattr(backend_module, "_available_cpus", lambda: 1)
        large = musicbrainz_query(AUTO_MULTICORE_MIN_RELATIONS, seed=0)
        assert isinstance(resolve_backend("auto", large), VectorizedBackend)
        # Even an explicit worker request cannot beat one usable CPU.
        assert isinstance(resolve_backend("auto", large, workers=4),
                          VectorizedBackend)

    def test_capabilities_report_multicore(self):
        for name in ("MPDP", "MPDP:Tree", "DPsub", "DPsize", "PDP",
                     "GOO", "IDP2", "UnionDP", "LinDP"):
            capabilities = DEFAULT_REGISTRY.capabilities(name)
            assert capabilities.supports_backend("multicore"), name
        assert not DEFAULT_REGISTRY.capabilities("IKKBZ").supports_backend(
            "multicore")

    def test_registry_builds_multicore_instances(self):
        optimizer = DEFAULT_REGISTRY.create("MPDP", backend="multicore",
                                            workers=2)
        assert optimizer.backend == "multicore"
        assert optimizer.workers == 2


@pytest.mark.multicore
class TestPlannerMulticoreKnob:
    def test_planner_outcomes_bit_identical(self, force_sharding):
        make = lambda: musicbrainz_query(13, seed=0)  # noqa: E731
        scalar = AdaptivePlanner(backend="scalar", enable_cache=False).plan(make())
        multicore = AdaptivePlanner(backend="multicore", workers=2,
                                    enable_cache=False).plan(make())
        assert multicore.cost == scalar.cost
        assert multicore.plan == scalar.plan
        assert multicore.decision.backend == "multicore"
        assert multicore.decision.workers == 2

    def test_plan_sql_workers_knob(self):
        from repro.catalog.schema import Catalog
        from repro.sql import plan_sql

        catalog = Catalog()
        for table in ("a", "b", "c"):
            catalog.add_table(table, 1e4)
        sql = "select * from a, b, c where a.x = b.x and b.y = c.y"
        planned = plan_sql(sql, catalog, backend="multicore", workers=2)
        assert planned.outcome.decision.backend == "multicore"
        assert planned.outcome.decision.workers == 2
        with pytest.raises(ValueError, match="workers="):
            plan_sql(sql, catalog, planner=AdaptivePlanner(), workers=2)

    def test_cli_workers_flag(self, capsys):
        from repro.planner.cli import main

        exit_code = main(["select * from a, b where a.x = b.x",
                          "--backend", "multicore", "--workers", "2",
                          "--no-plan"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "backend   : multicore (workers=2)" in output


class TestKernelStateHoist:
    """Satellite regression: derived kernel state is per-run, not per-level."""

    def test_snapshot_builder_created_once_per_run(self, monkeypatch):
        created = []
        original_init = SnapshotBuilder.__init__

        def counting_init(self, graph, scope=None):
            created.append(graph)
            original_init(self, graph, scope)

        monkeypatch.setattr(SnapshotBuilder, "__init__", counting_init)
        result = MPDP(backend="vectorized").optimize(musicbrainz_query(12, seed=0))
        assert len(result.stats.level_pairs) > 5  # many levels ...
        assert len(created) == 1                  # ... one builder

    def test_neighbour_column_computed_once_per_entry(self, monkeypatch):
        """The old per-level snapshot recomputed neighbours for the whole
        table at every level; the hoisted builder must touch each arena
        entry exactly once across the run."""
        processed = []
        original = SnapshotBuilder.neighbours_of

        def counting(self, masks):
            processed.append(len(masks))
            return original(self, masks)

        monkeypatch.setattr(SnapshotBuilder, "neighbours_of", counting)
        result = MPDP(backend="vectorized").optimize(musicbrainz_query(12, seed=0))
        # Every entry except the final level's (appended after the last
        # refresh — MPDP's top level plans exactly the full set) is
        # neighbour-computed exactly once.
        assert sum(processed) == len(result.memo) - 1

    def test_vectorized_run_touches_no_context_caches(self):
        """The vectorized kernels answer connectivity from the arena
        snapshot; a run must not fall back to per-pair context lookups."""
        query = musicbrainz_query(12, seed=1)
        context = EnumerationContext.of(query.graph)
        before = context.cache_info()
        MPDP(backend="vectorized").optimize(query)
        after = context.cache_info()
        # optimize() itself checks subset connectivity once; nothing else.
        assert after["connectivity_misses"] - before["connectivity_misses"] <= 1
        assert after["block_misses"] == before["block_misses"]
        assert after["grow_misses"] == before["grow_misses"]
        assert after["neighbour_misses"] == before["neighbour_misses"]

    def test_scalar_block_misses_capped_by_distinct_sets(self):
        """ScalarBackend may decompose each connected set once — never once
        per pair — and a second run on the same graph hits the warm cache."""
        query = musicbrainz_query(11, seed=2)
        context = EnumerationContext.of(query.graph)
        before = context.block_misses
        result = MPDP(backend="scalar").optimize(query)
        first_run = context.block_misses - before
        assert 0 < first_run <= result.stats.connected_sets
        again = context.block_misses
        MPDP(backend="scalar").optimize(query)
        assert context.block_misses == again  # warm: zero re-derivations


@pytest.mark.perf_smoke
@pytest.mark.multicore
class TestMulticorePerfSmoke:
    def test_four_worker_speedup_on_clique14(self):
        """Acceptance guard: >= 2x measured wall-clock at 4 workers vs the
        single-core vectorized backend on clique n=14 MPDP.

        Real parallel speedup needs real cores: on machines with fewer than
        4 usable CPUs the assertion is meaningless (workers time-slice one
        core), so the guard skips — ``BENCH_multicore.json`` records the
        measured curve and the machine's CPU count either way.
        """
        cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
            else (os.cpu_count() or 1)
        if cpus < 4:
            pytest.skip(f"measured-speedup guard needs >= 4 usable CPUs, "
                        f"have {cpus}")
        query_factory = lambda: clique_query(  # noqa: E731
            14, seed=0, cost_model=CoutCostModel())
        start = time.perf_counter()
        vectorized = MPDP(backend="vectorized").optimize(query_factory())
        vectorized_seconds = time.perf_counter() - start
        start = time.perf_counter()
        multicore = MPDP(backend="multicore", workers=4).optimize(query_factory())
        multicore_seconds = time.perf_counter() - start
        assert multicore.cost == vectorized.cost
        assert multicore.plan == vectorized.plan
        assert vectorized_seconds / multicore_seconds >= 2.0
