"""Kernel execution backends: scalar/vectorized equivalence and the arena.

The vectorized backend's whole contract is *bit-identity* with the scalar
reference (see ``src/repro/exec/``): same plans (down to join orientation on
cost ties), same costs, same counters, same memo iteration order.  These
tests pin that contract across the fig04/06-09 workloads and every
shape-taxonomy topology, and cover the supporting layers: the PlanArena's
lazy materialization, the batched cost/cardinality contracts, backend
resolution, the planner/front-door knob, and the per-level batch sizes the
GPU pipeline model now consumes.
"""

from __future__ import annotations

import time

import pytest

from repro.core import bitmapset as bms
from repro.core.arena import PlanArena
from repro.core.counters import OptimizerStats
from repro.core.enumeration import EnumerationContext
from repro.core.joingraph import JoinGraph
from repro.core.memo import MemoTable
from repro.core.query import QueryInfo
from repro.cost.cardinality import CardinalityEstimator
from repro.cost.cout import CoutCostModel
from repro.cost.postgres import PostgresCostModel
from repro.exec import (
    AUTO_VECTORIZE_MIN_RELATIONS,
    ScalarBackend,
    resolve_backend,
    vectorized_supported,
)
from repro.exec.vectorized import VectorizedBackend
from repro.gpu.pipeline import GPUPipelineModel
from repro.gpu.simulated import MPDPGpu
from repro.optimizers import DPSize, DPSub, MPDP
from repro.optimizers.mpdp import MPDPTree
from repro.planner import DEFAULT_REGISTRY, AdaptivePlanner
from repro.workloads import (
    chain_query,
    clique_query,
    cycle_query,
    musicbrainz_query,
    random_connected_query,
    snowflake_query,
    star_query,
)

# --------------------------------------------------------------------------- #
# Workloads: the fig04/06-09 benchmark queries plus one of every shape in the
# taxonomy (chain / star / snowflake / cycle / clique / general cyclic).
# --------------------------------------------------------------------------- #
WORKLOAD_FACTORIES = {
    "fig04_star_n10_seed1": lambda: star_query(10, seed=1),
    "fig06_star_n10_seed0": lambda: star_query(10, seed=0),
    "fig07_snowflake_n12_seed0": lambda: snowflake_query(12, seed=0),
    "fig08_clique_n9_seed0": lambda: clique_query(9, seed=0),
    "fig09_musicbrainz_n13_seed0": lambda: musicbrainz_query(13, seed=0),
    "shape_chain_n11": lambda: chain_query(11, seed=4),
    "shape_cycle_n10": lambda: cycle_query(10, seed=2),
    "shape_cyclic_sparse_n9": lambda: random_connected_query(
        9, extra_edge_probability=0.15, seed=7),
    "shape_cyclic_dense_n9": lambda: random_connected_query(
        9, extra_edge_probability=0.5, seed=11),
    "cout_star_n10": lambda: star_query(10, seed=0, cost_model=CoutCostModel()),
    "cout_clique_n9": lambda: clique_query(9, seed=0, cost_model=CoutCostModel()),
}

#: Acyclic workloads MPDP:Tree accepts.
TREE_WORKLOADS = ("fig04_star_n10_seed1", "fig06_star_n10_seed0",
                  "fig07_snowflake_n12_seed0", "shape_chain_n11",
                  "cout_star_n10")

COUNTER_FIELDS = ("evaluated_pairs", "ccp_pairs", "sets_considered",
                  "connected_sets", "level_sets", "level_considered",
                  "level_pairs", "level_ccp", "memo_entries")


def assert_equivalent(scalar_result, vectorized_result):
    """The full bit-identity contract between two PlanResults."""
    assert vectorized_result.cost == scalar_result.cost
    # Frozen-dataclass equality covers every node's rows/cost/method and the
    # exact left/right orientation chosen on cost ties.
    assert vectorized_result.plan == scalar_result.plan
    for field in COUNTER_FIELDS:
        assert getattr(vectorized_result.stats, field) == \
            getattr(scalar_result.stats, field), field
    # Memo surface: same keys, same iteration order, same per-entry plans.
    scalar_items = list(scalar_result.memo.items())
    vectorized_items = list(vectorized_result.memo.items())
    assert [k for k, _ in vectorized_items] == [k for k, _ in scalar_items]
    for (_, scalar_plan), (_, vector_plan) in zip(scalar_items, vectorized_items):
        assert vector_plan.cost == scalar_plan.cost


class TestBackendEquivalence:
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_FACTORIES))
    def test_mpdp_bit_identical(self, workload):
        make = WORKLOAD_FACTORIES[workload]
        # Fresh query per backend: equivalence must not rely on shared caches.
        scalar = MPDP(backend="scalar").optimize(make())
        vectorized = MPDP(backend="vectorized").optimize(make())
        assert isinstance(vectorized.memo, PlanArena)
        assert isinstance(scalar.memo, MemoTable)
        assert_equivalent(scalar, vectorized)

    @pytest.mark.parametrize("workload", sorted(WORKLOAD_FACTORIES))
    def test_dpsub_bit_identical(self, workload):
        make = WORKLOAD_FACTORIES[workload]
        scalar = DPSub(backend="scalar").optimize(make())
        vectorized = DPSub(backend="vectorized").optimize(make())
        assert_equivalent(scalar, vectorized)

    @pytest.mark.parametrize("workload", TREE_WORKLOADS)
    def test_mpdp_tree_bit_identical(self, workload):
        make = WORKLOAD_FACTORIES[workload]
        scalar = MPDPTree(backend="scalar").optimize(make())
        vectorized = MPDPTree(backend="vectorized").optimize(make())
        assert_equivalent(scalar, vectorized)

    @pytest.mark.parametrize("workload", sorted(WORKLOAD_FACTORIES))
    def test_dpsize_bit_identical(self, workload):
        make = WORKLOAD_FACTORIES[workload]
        scalar = DPSize(backend="scalar").optimize(make())
        vectorized = DPSize(backend="vectorized").optimize(make())
        assert_equivalent(scalar, vectorized)

    def test_dpsub_unrank_filter_bit_identical(self):
        make = lambda: clique_query(7, seed=0)  # noqa: E731
        scalar = DPSub(unrank_filter=True, backend="scalar").optimize(make())
        vectorized = DPSub(unrank_filter=True, backend="vectorized").optimize(make())
        assert_equivalent(scalar, vectorized)

    @pytest.mark.parametrize("seed", range(8))
    def test_mpdp_random_topologies(self, seed):
        """Property sweep over random cyclic graphs (hang-off lift stress)."""
        for density in (0.1, 0.3, 0.6):
            make = lambda: random_connected_query(  # noqa: E731
                8, extra_edge_probability=density, seed=seed)
            scalar = MPDP(backend="scalar").optimize(make())
            vectorized = MPDP(backend="vectorized").optimize(make())
            assert_equivalent(scalar, vectorized)

    def test_subset_scope_bit_identical(self):
        """Fragment optimization (within=) runs the same on both backends."""
        make = lambda: musicbrainz_query(13, seed=0)  # noqa: E731
        query_a, query_b = make(), make()
        context = EnumerationContext.of(query_a.graph)
        # A connected 8-vertex fragment of the query.
        fragment = next(iter(context.connected_subsets(8)))
        scalar = MPDP(backend="scalar").optimize(query_a, subset=fragment)
        vectorized = MPDP(backend="vectorized").optimize(query_b, subset=fragment)
        assert_equivalent(scalar, vectorized)

    def test_auto_backend_matches_scalar(self):
        make = lambda: musicbrainz_query(13, seed=1)  # noqa: E731
        scalar = MPDP(backend="scalar").optimize(make())
        auto = MPDP(backend="auto").optimize(make())
        assert_equivalent(scalar, auto)


class TestPlanArena:
    def _arena_result(self, make=lambda: star_query(9, seed=0)):
        return MPDP(backend="vectorized").optimize(make())

    def test_plans_materialized_lazily(self):
        result = self._arena_result()
        arena = result.memo
        assert isinstance(arena, PlanArena)
        # The DP sweep stored splits, not plans, for every joined set: only
        # the leaves and the final backtracked plan line are materialized.
        materialized = len(arena._plans)
        assert materialized < len(arena)
        top = arena[star_query(9, seed=0).all_relations_mask]
        assert top.cost == result.cost
        # Accessing an interior entry materializes it (and caches it).
        key = arena.keys_of_size(2)[0]
        assert arena.split_of(key) is not None
        plan = arena[key]
        assert arena[key] is plan

    def test_materialization_matches_stored_cost(self):
        result = self._arena_result()
        arena = result.memo
        for key, plan in arena.items():
            assert plan.cost == arena.cost_of(key)
            assert plan.rows == arena.rows_of(key)
            plan.validate()

    def test_cost_drift_detection(self):
        """Materialization cross-checks the batched cost (arena contract)."""
        result = self._arena_result()
        arena = result.memo
        key = arena.keys_of_size(3)[0]
        slot = arena._index[key]
        arena._cost[slot] = arena._cost[slot] * 1.5  # simulate kernel drift
        with pytest.raises(RuntimeError, match="cost_batch drift"):
            arena[key]

    def test_record_level_rejects_existing_keys(self):
        query = star_query(4, seed=0)
        arena = PlanArena(query)
        arena.put(0b1, query.leaf_plan(0))
        with pytest.raises(ValueError, match="already holds"):
            arena.record_level([0b1], [1.0], [1.0], [0b1], [0b1])

    def test_put_mirrors_memo_semantics(self):
        query = star_query(4, seed=0)
        arena = PlanArena(query)
        memo = MemoTable()
        for vertex in range(4):
            arena.put(bms.bit(vertex), query.leaf_plan(vertex))
            memo.put(bms.bit(vertex), query.leaf_plan(vertex))
        pair = bms.from_indices([0, 1])
        plan = query.join(bms.bit(0), bms.bit(1),
                          query.leaf_plan(0), query.leaf_plan(1))
        assert arena.put(pair, plan) is True
        assert arena.put(pair, plan) is False  # equal cost: first wins
        assert arena.keys_of_size(1) == memo.keys_of_size(1)
        assert len(arena) == 5
        assert pair in arena
        assert arena.get(bms.from_indices([2, 3])) is None
        arena.clear()
        assert len(arena) == 0 and arena.n_updates == 0


class TestBackendResolution:
    def test_names_and_errors(self):
        query = star_query(5, seed=0)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("simd", query)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            MPDP(backend="simd")
        assert isinstance(resolve_backend("scalar", query), ScalarBackend)
        assert isinstance(resolve_backend("vectorized", query), VectorizedBackend)

    def test_auto_is_size_gated(self):
        small = star_query(AUTO_VECTORIZE_MIN_RELATIONS - 1, seed=0)
        large = star_query(AUTO_VECTORIZE_MIN_RELATIONS, seed=0)
        assert isinstance(resolve_backend("auto", small), ScalarBackend)
        assert isinstance(resolve_backend("auto", large), VectorizedBackend)
        # The gate counts the optimized subset, not the whole graph.
        subset = bms.from_indices(range(4))
        assert isinstance(resolve_backend("auto", large, subset), ScalarBackend)

    def test_wide_graphs_run_natively(self):
        # Multi-word bitmap columns: width is an array parameter, not a
        # capability — a 70-relation graph resolves to the real kernels.
        graph = JoinGraph(70)
        for vertex in range(1, 70):
            graph.add_edge(0, vertex, selectivity=1e-3)
        query = QueryInfo(graph, [1e3] * 70)
        assert vectorized_supported(query)
        assert isinstance(resolve_backend("vectorized", query),
                          VectorizedBackend)

    def test_capabilities_report_backends(self):
        # The exact kernel-pipeline optimizers AND the kernelized heuristic
        # ladder all advertise the backend knob.
        for name in ("MPDP", "MPDP:Tree", "DPsub", "DPsize", "PDP",
                     "GOO", "IDP1", "IDP2", "UnionDP", "LinDP", "LinearizedDP"):
            capabilities = DEFAULT_REGISTRY.capabilities(name)
            assert capabilities.supports_backend("vectorized"), name
            assert capabilities.supports_backend("scalar")
            assert capabilities.supports_backend("auto")
        # Heuristics with no kernelized loops stay scalar-only.
        for name in ("IKKBZ", "GE-QO"):
            capabilities = DEFAULT_REGISTRY.capabilities(name)
            assert not capabilities.supports_backend("vectorized"), name
            assert capabilities.supports_backend("scalar")

    def test_registry_builds_backend_instances(self):
        optimizer = DEFAULT_REGISTRY.create("MPDP", backend="vectorized")
        assert optimizer.backend == "vectorized"
        result = optimizer.optimize(star_query(8, seed=0))
        assert isinstance(result.memo, PlanArena)


class TestBatchedCostContract:
    def test_cout_cost_batch_bitwise(self):
        import numpy as np

        model = CoutCostModel()
        rng_rows = np.array([10.0, 3e5, 7.25, 1e12])
        left_costs = np.array([0.0, 125.5, 3.75, 9e9])
        right_rows = np.array([5.0, 2e4, 11.0, 1e3])
        right_costs = np.array([1.0, 999.25, 0.0, 8e8])
        out_rows = np.array([50.0, 6e9, 80.0, 1e15])
        batched = model.cost_batch(left_costs=left_costs, left_rows=rng_rows,
                                   right_rows=right_rows, right_costs=right_costs,
                                   output_rows=out_rows)
        for index in range(4):
            expected = model.join_cost_from_stats(
                float(rng_rows[index]), float(left_costs[index]),
                float(right_rows[index]), float(right_costs[index]),
                float(out_rows[index]))
            assert float(batched[index]) == expected

    def test_postgres_stats_fallback_matches_join(self):
        model = PostgresCostModel()
        left = model.scan(0, 1e4)
        right = model.scan(1, 2e6)
        for out_rows in (1.0, 5e3, 1e9):
            plan = model.join(left, right, out_rows)
            assert model.join_cost_from_stats(
                left.rows, left.cost, right.rows, right.cost, out_rows) == plan.cost

    def test_default_cost_batch_uses_stub_plans(self):
        class MinimalModel(CoutCostModel):
            name = "minimal"
            # No cost_batch / join_cost_from_stats overrides: exercise the
            # CostModel defaults (stub plans through join()).
            join_cost_from_stats = CoutCostModel.__mro__[1].join_cost_from_stats
            cost_batch = CoutCostModel.__mro__[1].cost_batch

        model = MinimalModel()
        batched = model.cost_batch([1.0, 2.0], [3.0, 4.0], [5.0, 6.0],
                                   [7.0, 8.0], [9.0, 10.0])
        assert list(batched) == [3.0 + 7.0 + 9.0, 4.0 + 8.0 + 10.0]

    def test_rows_batch_deduplicates_and_matches_scalar(self):
        query = star_query(7, seed=0)
        estimator = query.cardinality
        masks = [0b11, 0b101, 0b11, 0b1110, 0b101]
        batched = estimator.rows_batch(masks)
        assert list(batched) == [estimator.rows(mask) for mask in masks]

    def test_rows_batch_on_contracted_query(self):
        query = clique_query(6, seed=0)
        partitions = [bms.from_indices([0, 1]), bms.from_indices([2, 3]),
                      bms.from_indices([4, 5])]
        plans = [MPDP().optimize(query, subset=p).plan for p in partitions]
        contracted = query.contract(partitions, plans)
        masks = [0b11, 0b111, 0b11]
        assert list(contracted.rows_batch(masks)) == \
            [contracted.rows(mask) for mask in masks]


class TestBlockOrderCoupling:
    @pytest.mark.parametrize("seed", range(10))
    def test_fused_dfs_matches_find_blocks_order(self, seed):
        """The vectorized backend's fused Hopcroft-Tarjan walk must emit
        blocks in exactly ``find_blocks``'s order: scalar cost-tie winners
        depend on block iteration order, so a divergence here silently
        changes vectorized tie-breaks.  If this test starts failing after a
        change to ``core/blocks.py``, update ``_blocks_and_hangs`` to match
        the new emission order (not the other way around)."""
        from repro.core.blocks import find_blocks
        from repro.exec.vectorized import _blocks_and_hangs

        for density in (0.0, 0.2, 0.5, 1.0):
            query = random_connected_query(
                9, extra_edge_probability=density, seed=seed)
            graph = query.graph
            context = EnumerationContext.of(graph)
            for size in (3, 5, 7, 9):
                for target in context.connected_subsets(size)[:40]:
                    fused_blocks, hangs = _blocks_and_hangs(graph._adjacency, target)
                    assert fused_blocks == find_blocks(graph, target).blocks
                    # Hang-offs per block partition target \ block.
                    for block, weights in zip(fused_blocks, hangs):
                        if weights is None:
                            assert block == target
                            continue
                        union = 0
                        for mask in weights:
                            assert union & mask == 0
                            union |= mask
                        assert union == target & ~block


class TestMPDPTreeContextHoist:
    def test_context_resolved_once_per_run(self, monkeypatch):
        """Tree-split enumeration must touch the context cache O(1) times
        per query, not once per candidate set (the old per-call lookup)."""
        query = star_query(10, seed=0)
        EnumerationContext.of(query.graph)  # pre-create outside the count
        calls = []
        original = EnumerationContext.of.__func__

        def counting_of(cls, graph):
            calls.append(graph)
            return original(cls, graph)

        monkeypatch.setattr(EnumerationContext, "of", classmethod(counting_of))
        result = MPDPTree().optimize(query)
        assert result.stats.connected_sets > 100  # far more sets than lookups
        assert len(calls) <= 4

    def test_edge_splits_accepts_shared_context(self):
        query = star_query(6, seed=0)
        context = EnumerationContext.of(query.graph)
        mask = query.all_relations_mask
        with_context = list(MPDPTree._edge_splits(query, mask, context))
        without = list(MPDPTree._edge_splits(query, mask))
        assert with_context == without
        assert len(with_context) == 2 * (query.n_relations - 1)


class TestGPUPipelineBatchSizes:
    def _stats_with(self, level_considered):
        stats = OptimizerStats(algorithm="x")
        stats.level_pairs = {3: 100}
        stats.level_ccp = {3: 10}
        stats.level_sets = {3: 5}
        stats.level_considered = dict(level_considered)
        return stats

    def test_unrank_uses_recorded_batch_sizes(self):
        model = GPUPipelineModel(uses_subset_unranking=True)
        small = model.simulate(self._stats_with({3: 10}), 12)
        large = model.simulate(self._stats_with({3: 220}), 12)
        assert large.unrank > small.unrank
        assert large.filter > small.filter

    def test_unrank_falls_back_to_comb_for_legacy_stats(self):
        from math import comb

        model = GPUPipelineModel(uses_subset_unranking=True)
        legacy = self._stats_with({})
        recorded = self._stats_with({3: comb(12, 3)})
        assert model.simulate(legacy, 12).unrank == \
            model.simulate(recorded, 12).unrank

    def test_gpu_wrapper_backend_passthrough(self):
        make = lambda: star_query(10, seed=0)  # noqa: E731
        scalar = MPDPGpu(backend="scalar").optimize(make())
        vectorized = MPDPGpu(backend="vectorized").optimize(make())
        assert vectorized.cost == scalar.cost
        assert vectorized.plan == scalar.plan
        assert vectorized.stats.extra["gpu_total_seconds"] == pytest.approx(
            scalar.stats.extra["gpu_total_seconds"])


class TestPlannerBackendKnob:
    def test_planner_outcomes_bit_identical_across_backends(self):
        make = lambda: musicbrainz_query(13, seed=0)  # noqa: E731
        scalar = AdaptivePlanner(backend="scalar", enable_cache=False).plan(make())
        vectorized = AdaptivePlanner(backend="vectorized",
                                     enable_cache=False).plan(make())
        auto = AdaptivePlanner(backend="auto", enable_cache=False).plan(make())
        assert scalar.decision.algorithm == vectorized.decision.algorithm
        assert scalar.cost == vectorized.cost == auto.cost
        assert scalar.plan == vectorized.plan == auto.plan
        assert vectorized.decision.backend == "vectorized"
        assert auto.decision.backend == "auto"

    def test_planner_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            AdaptivePlanner(backend="gpu")

    def test_backends_share_cache_entries(self):
        """Backends are bit-identical, so the cache key must not depend on
        the backend knob: a scalar planner's entry serves a vectorized one."""
        from repro.planner.cache import PlanCache

        scalar = AdaptivePlanner(backend="scalar")
        vectorized = AdaptivePlanner(backend="vectorized")
        assert scalar._policy_tag == vectorized._policy_tag
        shared = PlanCache()
        first = AdaptivePlanner(backend="scalar", cache=shared)
        second = AdaptivePlanner(backend="vectorized", cache=shared)
        make = lambda: star_query(8, seed=5)  # noqa: E731
        miss = first.plan(make())
        hit = second.plan(make())
        assert not miss.decision.cache_hit
        assert hit.decision.cache_hit
        assert hit.cost == miss.cost

    def test_plan_sql_backend_knob(self):
        from repro.catalog.schema import Catalog
        from repro.sql import plan_sql

        catalog = Catalog()
        for table in ("a", "b", "c"):
            catalog.add_table(table, 1e4)
        sql = "select * from a, b, c where a.x = b.x and b.y = c.y"
        planned = plan_sql(sql, catalog, backend="vectorized")
        assert planned.outcome.decision.backend == "vectorized"
        with pytest.raises(ValueError, match="backend="):
            plan_sql(sql, catalog, planner=AdaptivePlanner(), backend="scalar")

    def test_cli_backend_flag(self, capsys):
        from repro.planner.cli import main

        exit_code = main(["select * from a, b where a.x = b.x",
                          "--backend", "vectorized", "--no-plan"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "backend   : vectorized" in output


@pytest.mark.perf_smoke
class TestVectorizedPerfSmoke:
    def test_vectorized_clique_level_sweep_is_fast(self):
        """Guard against catastrophic regressions of the batched kernels.

        A 13-clique MPDP sweep evaluates ~1.6M pairs; the vectorized backend
        does it in well under a second on any recent machine, so a generous
        absolute bound catches only order-of-magnitude regressions (the
        bit-identity suite above covers correctness).
        """
        query = clique_query(13, seed=0, cost_model=CoutCostModel())
        start = time.perf_counter()
        result = MPDP(backend="vectorized").optimize(query)
        elapsed = time.perf_counter() - start
        assert result.stats.evaluated_pairs == sum(
            result.stats.level_pairs.values())
        assert elapsed < 10.0
