"""Tests for ``repro-lint`` (:mod:`repro.analysis.lint`).

Each rule has a minimal *bad* fixture snippet (the checker must catch its
seeded violation) and a *clean twin* (the checker must stay silent), plus
the framework-level behaviours: suppression comments, comment-token marker
parsing (docstrings that merely quote the syntax must not count), JSON/text
output, exit codes — and the meta-test that the real ``src/`` tree lints
clean with every rule enabled.
"""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    build_checkers,
    checker_names,
    lint_paths,
    main,
)
from repro.analysis.lint.checkers.capabilities import check_registry
from repro.planner.registry import DEFAULT_REGISTRY, OptimizerRegistry

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_source(tmp_path, source, rules=None):
    """Lint one fixture snippet; returns the findings list."""
    path = tmp_path / "fixture.py"
    path.write_text(source)
    return lint_paths([str(path)], rules=rules, project_checks=False)


def rules_of(findings):
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------------- #
# guarded-by: lock discipline
# --------------------------------------------------------------------------- #
GUARDED_BAD = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock

    def record(self):
        self.hits += 1
"""

GUARDED_GOOD = GUARDED_BAD.replace(
    "        self.hits += 1",
    "        with self._lock:\n            self.hits += 1")


def test_guarded_by_catches_unlocked_mutation(tmp_path):
    findings = lint_source(tmp_path, GUARDED_BAD)
    assert rules_of(findings) == ["guarded-by"]
    assert "self.hits" in findings[0].message
    assert "_lock" in findings[0].message


def test_guarded_by_passes_locked_twin(tmp_path):
    assert lint_source(tmp_path, GUARDED_GOOD) == []


def test_guarded_by_init_assignment_is_construction(tmp_path):
    # The declaring assignment itself (and any other __init__ store) is not
    # a violation: the object is not yet shared.
    source = GUARDED_BAD.replace(
        "    def record(self):\n        self.hits += 1", "")
    assert lint_source(tmp_path, source) == []


def test_guarded_by_container_mutator_needs_lock(tmp_path):
    source = """
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.pools = []  # guarded-by: _lock

    def add(self, pool):
        self.pools.append(pool)
"""
    findings = lint_source(tmp_path, source)
    assert rules_of(findings) == ["guarded-by"]
    assert ".append() call" in findings[0].message


def test_guarded_by_lock_held_marker_exempts_helper(tmp_path):
    source = """
import threading

class Stripe:
    def __init__(self):
        self.lock = threading.Lock()
        self.hits = 0  # guarded-by: lock

    def drain(self):  # lock-held: lock
        self.hits += 1
"""
    assert lint_source(tmp_path, source) == []


def test_guarded_by_matches_non_self_bases(tmp_path):
    # Mutating another object's guarded attribute requires *that* object's
    # lock (the PlanCache stripe pattern).
    source = """
import threading

class Stripe:
    def __init__(self):
        self.lock = threading.Lock()
        self.hits = 0  # guarded-by: lock

def touch(stripe):
    stripe.hits += 1
"""
    findings = lint_source(tmp_path, source)
    assert rules_of(findings) == ["guarded-by"]
    fixed = source.replace(
        "    stripe.hits += 1",
        "    with stripe.lock:\n        stripe.hits += 1")
    assert lint_source(tmp_path, fixed) == []


# --------------------------------------------------------------------------- #
# kernel purity
# --------------------------------------------------------------------------- #
KERNEL_LOOP_BAD = """
@kernel
def fold(values):
    total = 0
    for value in values:
        total += value
    return total
"""

KERNEL_LOOP_GOOD = """
@kernel
def fold(column):
    out = column[:, 0].copy()
    for word in range(1, column.shape[1]):  # loop: words
        out |= column[:, word]
    return out
"""


def test_kernel_loop_catches_unannotated_loop(tmp_path):
    findings = lint_source(tmp_path, KERNEL_LOOP_BAD)
    assert rules_of(findings) == ["kernel-loop"]
    assert "`fold`" in findings[0].message


def test_kernel_loop_passes_annotated_axis(tmp_path):
    assert lint_source(tmp_path, KERNEL_LOOP_GOOD) == []


def test_kernel_loop_ignores_unmarked_functions(tmp_path):
    # No @kernel decorator: loops are the scalar path's business.
    source = KERNEL_LOOP_BAD.replace("@kernel\n", "")
    assert lint_source(tmp_path, source) == []


def test_kernel_clock_catches_wall_clock(tmp_path):
    source = """
import time

@kernel
def shard(batch):
    begin = time.time()
    return batch, begin
"""
    findings = lint_source(tmp_path, source)
    assert rules_of(findings) == ["kernel-clock"]


def test_kernel_clock_allows_clock_outside_kernels(tmp_path):
    source = """
import time

def driver(batch):
    begin = time.time()
    return batch, begin
"""
    assert lint_source(tmp_path, source) == []


def test_kernel_random_catches_module_level_seed(tmp_path):
    source = """
import numpy as np

np.random.seed(0)
"""
    findings = lint_source(tmp_path, source)
    assert rules_of(findings) == ["kernel-random"]


def test_kernel_random_allows_function_scoped_rng(tmp_path):
    source = """
import numpy as np

def make_workload(seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10, size=4)
"""
    assert lint_source(tmp_path, source) == []


# --------------------------------------------------------------------------- #
# estimator-guard
# --------------------------------------------------------------------------- #
ESTIMATOR_BAD = """
class Estimator:
    def rows_batch(self, rows, spec):
        return self._rows_fold(rows, spec)
"""

ESTIMATOR_GOOD = """
class Estimator:
    def rows_batch(self, rows, spec):
        if not estimator_overrides_rows(self):
            return self._rows_fold(rows, spec)
        return [self.rows(mask) for mask in rows]
"""


def test_estimator_guard_catches_unguarded_fold(tmp_path):
    findings = lint_source(tmp_path, ESTIMATOR_BAD)
    assert rules_of(findings) == ["estimator-guard"]
    assert "_rows_fold" in findings[0].message


def test_estimator_guard_passes_guarded_twin(tmp_path):
    assert lint_source(tmp_path, ESTIMATOR_GOOD) == []


def test_estimator_guard_primitives_are_exempt(tmp_path):
    # The guard belongs at the entry point; the fold primitives call each
    # other freely.
    source = """
class Estimator:
    def _rows_fold(self, rows, spec):
        values, selectors = self._fold_steps_for_spec(spec)
        return values
"""
    assert lint_source(tmp_path, source) == []


def test_estimator_guard_marked_manual_fold(tmp_path):
    bad = """
def merge(steps, acc):
    for value, low, high in steps:  # repro-lint: estimator-fold
        acc[low:high + 1] += value
    return acc
"""
    findings = lint_source(tmp_path, bad)
    assert rules_of(findings) == ["estimator-guard"]
    good = """
def merge(estimator, steps, acc):
    fold_ok = not estimator_overrides_rows(estimator)
    if fold_ok:
        for value, low, high in steps:  # repro-lint: estimator-fold
            acc[low:high + 1] += value
    return acc
"""
    assert lint_source(tmp_path, good) == []


def test_estimator_guard_nested_function_inherits_guard(tmp_path):
    # The lindp_merge shape: guard in the outer function dominates a fold
    # inside a nested helper.
    source = """
def outer(estimator, steps):
    fold_ok = not estimator_overrides_rows(estimator)

    def inner(acc):
        if fold_ok:
            return outer_fold(acc)  # repro-lint: estimator-fold
        return None

    return inner
"""
    assert lint_source(tmp_path, source) == []


def test_estimator_guard_docstring_mention_is_not_a_marker(tmp_path):
    # Prose quoting the marker syntax must not create a fold site.
    source = '''
def helper():
    """Statements marked ``# repro-lint: estimator-fold`` are fold sites."""
    return None
'''
    assert lint_source(tmp_path, source) == []


# --------------------------------------------------------------------------- #
# knob-threading
# --------------------------------------------------------------------------- #
def test_knob_threading_catches_dropped_worker_knob(tmp_path):
    source = """
def build(backend="scalar", workers=None):
    return make_backend(backend)
"""
    findings = lint_source(tmp_path, source)
    assert rules_of(findings) == ["knob-threading"]
    assert "`workers`" in findings[0].message


def test_knob_threading_catches_backend_only_constructor_call(tmp_path):
    source = """
def make():
    return GOO(backend="scalar")
"""
    findings = lint_source(tmp_path, source)
    assert rules_of(findings) == ["knob-threading"]
    assert "workers=" in findings[0].message


def test_knob_threading_passes_forwarding_twin(tmp_path):
    source = """
def build(backend="scalar", workers=None):
    return GOO(backend=backend, workers=workers)
"""
    assert lint_source(tmp_path, source) == []


def test_knob_threading_allows_kwargs_splat_and_workers_only(tmp_path):
    source = """
def build(**kwargs):
    pool = MulticoreBackend(workers=2)
    return MPDP(backend="scalar", **kwargs), pool
"""
    assert lint_source(tmp_path, source) == []


# --------------------------------------------------------------------------- #
# broad-except
# --------------------------------------------------------------------------- #
def test_broad_except_catches_silent_swallow(tmp_path):
    source = """
def load():
    try:
        return fetch()
    except Exception:
        pass
"""
    findings = lint_source(tmp_path, source)
    assert rules_of(findings) == ["broad-except"]


def test_broad_except_allows_handled_and_narrow(tmp_path):
    source = """
def load(log):
    try:
        return fetch()
    except KeyError:
        pass
    except Exception as error:
        log(error)
        return None
"""
    assert lint_source(tmp_path, source) == []


def test_broad_except_catches_bare_except(tmp_path):
    source = """
def load():
    try:
        return fetch()
    except:
        pass
"""
    findings = lint_source(tmp_path, source)
    assert rules_of(findings) == ["broad-except"]


# --------------------------------------------------------------------------- #
# capability-consistency
# --------------------------------------------------------------------------- #
def test_capability_consistency_clean_on_probed_registration():
    from repro.heuristics.goo import GOO

    registry = OptimizerRegistry()
    registry.register(GOO, key="goo")
    assert check_registry(registry) == []


def test_capability_consistency_catches_backend_drift():
    from repro.heuristics.goo import GOO

    probe = GOO().describe()
    drifted = dataclasses.replace(
        probe, backends=frozenset(probe.backends | {"bogus"}))
    registry = OptimizerRegistry()
    registry.register(GOO, key="goo", capabilities=drifted)
    findings = check_registry(registry)
    assert findings, "backend drift must be reported"
    assert all(finding.rule == "capability-consistency"
               for finding in findings)
    messages = " ".join(finding.message for finding in findings)
    assert "bogus" in messages


def test_capability_consistency_default_registry_is_clean():
    assert check_registry(DEFAULT_REGISTRY) == []


# --------------------------------------------------------------------------- #
# Suppressions and framework behaviour
# --------------------------------------------------------------------------- #
def test_line_suppression(tmp_path):
    source = GUARDED_BAD.replace(
        "        self.hits += 1",
        "        self.hits += 1  # repro-lint: disable=guarded-by")
    assert lint_source(tmp_path, source) == []


def test_file_suppression(tmp_path):
    source = "# repro-lint: disable-file=guarded-by\n" + GUARDED_BAD
    assert lint_source(tmp_path, source) == []


def test_suppression_of_other_rule_does_not_apply(tmp_path):
    source = GUARDED_BAD.replace(
        "        self.hits += 1",
        "        self.hits += 1  # repro-lint: disable=kernel-loop")
    assert rules_of(lint_source(tmp_path, source)) == ["guarded-by"]


def test_rules_subset_runs_only_selected_checkers(tmp_path):
    combined = GUARDED_BAD + "\n" + KERNEL_LOOP_BAD
    findings = lint_source(tmp_path, combined, rules=["kernel-loop"])
    assert rules_of(findings) == ["kernel-loop"]


def test_unknown_rule_name_raises():
    with pytest.raises(KeyError):
        build_checkers(["no-such-rule"])


def test_registered_rule_battery():
    names = checker_names()
    for expected in ("guarded-by", "kernel-loop", "kernel-clock",
                     "kernel-random", "estimator-guard", "knob-threading",
                     "capability-consistency", "broad-except"):
        assert expected in names


def test_parse_error_is_reported(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    findings = lint_paths([str(path)], project_checks=False)
    assert rules_of(findings) == ["parse-error"]


def test_finding_round_trip():
    finding = Finding("guarded-by", "module.py", 7, "message")
    assert finding.to_dict() == {"rule": "guarded-by", "path": "module.py",
                                 "line": 7, "message": "message"}
    assert finding.render() == "module.py:7: [guarded-by] message"


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def test_cli_reports_findings_and_exit_code(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text(GUARDED_BAD)
    status = main([str(path), "--no-project-checks"])
    out = capsys.readouterr().out
    assert status == 1
    assert "[guarded-by]" in out
    assert "1 finding(s)" in out


def test_cli_clean_exit_zero(tmp_path, capsys):
    path = tmp_path / "good.py"
    path.write_text(GUARDED_GOOD)
    status = main([str(path), "--no-project-checks"])
    assert status == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_output(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text(GUARDED_BAD)
    status = main([str(path), "--format", "json", "--no-project-checks"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 1
    assert [entry["rule"] for entry in payload] == ["guarded-by"]
    assert payload[0]["path"] == str(path)


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "guarded-by:" in out
    assert "capability-consistency:" in out


def test_cli_unknown_rule_exit_two(tmp_path, capsys):
    path = tmp_path / "empty.py"
    path.write_text("x = 1\n")
    assert main([str(path), "--rules", "bogus"]) == 2
    assert "unknown rule" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Meta: the real tree is clean, and mypy agrees when available
# --------------------------------------------------------------------------- #
def test_repro_lint_clean_on_real_src():
    findings = lint_paths([str(REPO_ROOT / "src")], project_checks=True)
    assert findings == [], "\n".join(finding.render()
                                     for finding in findings)


def test_real_tree_has_live_contract_annotations():
    # The seeded markers must actually exist (guarding against a refactor
    # silently dropping the annotations the lint run depends on).
    cache = (REPO_ROOT / "src/repro/planner/cache.py").read_text()
    assert "# guarded-by: lock" in cache
    assert "# lock-held: lock" in cache
    vectorized = (REPO_ROOT / "src/repro/exec/vectorized.py").read_text()
    assert "@kernel" in vectorized
    assert "# loop: " in vectorized
    kernels = (REPO_ROOT / "src/repro/exec/heuristic_kernels.py").read_text()
    assert "# repro-lint: estimator-fold" in kernels


def test_mypy_passes_when_available():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file",
         str(REPO_ROOT / "mypy.ini")],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
