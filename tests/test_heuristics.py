"""Tests for the heuristic optimizers (GOO, IKKBZ, GEQO, IDP, LinDP, UnionDP)."""

import itertools

import pytest

from repro.core import bitmapset as bms
from repro.heuristics import (
    GEQO,
    GOO,
    HEURISTIC_OPTIMIZERS,
    IDP1,
    IDP2,
    IKKBZ,
    AdaptiveLinDP,
    LinearizedDP,
    UnionDP,
    build_left_deep_plan,
    left_deep_cout_cost,
)
from repro.cost import CoutCostModel
from repro.core.query import QueryInfo
from repro.optimizers import MPDP, DPCcp, OptimizationError
from repro.workloads import (
    chain_query,
    clique_query,
    cycle_query,
    random_connected_query,
    snowflake_query,
    star_query,
)

ALL_HEURISTICS = [
    ("GOO", lambda: GOO()),
    ("IKKBZ", lambda: IKKBZ()),
    ("GE-QO", lambda: GEQO(seed=7, generations=60)),
    ("IDP1", lambda: IDP1(k=5)),
    ("IDP2", lambda: IDP2(k=5)),
    ("LinearizedDP", lambda: LinearizedDP()),
    ("LinDP", lambda: AdaptiveLinDP()),
    ("UnionDP", lambda: UnionDP(k=5)),
]

SMALL_QUERIES = [
    ("star", star_query(8, seed=4)),
    ("snowflake", snowflake_query(9, seed=4)),
    ("cycle", cycle_query(7, seed=4)),
    ("random", random_connected_query(8, seed=4)),
]


class TestCommonHeuristicContract:
    @pytest.mark.parametrize("hname,factory", ALL_HEURISTICS)
    @pytest.mark.parametrize("qname,query", SMALL_QUERIES)
    def test_produces_valid_complete_plan(self, hname, factory, qname, query):
        result = factory().optimize(query)
        result.plan.validate()
        assert result.plan.relations == query.all_relations_mask
        assert result.cost == pytest.approx(result.plan.cost)

    @pytest.mark.parametrize("hname,factory", ALL_HEURISTICS)
    @pytest.mark.parametrize("qname,query", SMALL_QUERIES)
    def test_never_beats_the_exact_optimum(self, hname, factory, qname, query):
        optimal = MPDP().optimize(query).cost
        heuristic = factory().optimize(query).cost
        assert heuristic >= optimal - 1e-6 * optimal

    @pytest.mark.parametrize("hname,factory", ALL_HEURISTICS)
    def test_deterministic_given_seeded_inputs(self, hname, factory):
        query = snowflake_query(10, seed=9)
        assert factory().optimize(query).cost == pytest.approx(factory().optimize(query).cost)

    def test_registry_covers_paper_techniques(self):
        assert {"GE-QO", "GOO", "IKKBZ", "LinDP", "IDP2", "UnionDP"} <= set(HEURISTIC_OPTIMIZERS)


class TestGOO:
    def test_greedy_choice_on_handcrafted_query(self):
        # Chain a-b-c where joining b-c first is clearly better.
        from repro.core.joingraph import JoinGraph
        graph = JoinGraph(3, ["a", "b", "c"])
        graph.add_edge(0, 1, 0.5)      # a-b join is big
        graph.add_edge(1, 2, 0.001)    # b-c join is tiny
        query = QueryInfo(graph, [1000.0, 1000.0, 1000.0])
        plan = GOO().optimize(query).plan
        first_join = min(plan.iter_joins(), key=lambda node: node.n_relations)
        assert first_join.relations == bms.from_indices([1, 2])

    def test_handles_large_tree_queries_quickly(self):
        query = snowflake_query(120, seed=2)
        result = GOO().optimize(query)
        assert result.plan.relations == query.all_relations_mask
        assert result.stats.ccp_pairs == 119  # n-1 joins

    def test_exact_on_two_relations(self):
        query = chain_query(2, seed=1)
        assert GOO().optimize(query).cost == pytest.approx(MPDP().optimize(query).cost)


class TestIKKBZ:
    def test_plan_is_left_deep(self):
        query = snowflake_query(12, seed=3)
        plan = IKKBZ().optimize(query).plan
        assert plan.is_left_deep()

    def test_linear_order_is_a_permutation_and_connected_prefixes(self):
        query = snowflake_query(12, seed=3)
        order = IKKBZ().linear_order(query)
        assert sorted(order) == list(range(query.n_relations))
        prefix = bms.bit(order[0])
        for vertex in order[1:]:
            assert query.graph.is_connected_to(prefix, bms.bit(vertex))
            prefix |= bms.bit(vertex)

    def test_optimal_among_left_deep_orders_under_cout(self):
        """IKKBZ is exact for left-deep plans under C_out on acyclic graphs."""
        query = star_query(6, seed=5, cost_model=CoutCostModel())
        order = IKKBZ().linear_order(query)
        best_cost = left_deep_cout_cost(query, order)
        for permutation in itertools.permutations(range(query.n_relations)):
            # Skip orders with cross products (disconnected prefixes).
            prefix = bms.bit(permutation[0])
            valid = True
            for vertex in permutation[1:]:
                if not query.graph.is_connected_to(prefix, bms.bit(vertex)):
                    valid = False
                    break
                prefix |= bms.bit(vertex)
            if not valid:
                continue
            assert best_cost <= left_deep_cout_cost(query, permutation) * (1 + 1e-9)

    def test_left_deep_cout_cost_manual(self):
        from repro.core.joingraph import JoinGraph
        graph = JoinGraph(3)
        graph.add_edge(0, 1, 0.1)
        graph.add_edge(1, 2, 0.01)
        query = QueryInfo(graph, [10.0, 20.0, 30.0])
        # order 0,1,2: |01| = 10*20*0.1 = 20 ; |012| = 20*30*0.01 = 6 -> 26.
        assert left_deep_cout_cost(query, [0, 1, 2]) == pytest.approx(26.0)

    def test_build_left_deep_plan_order(self):
        query = chain_query(4, seed=0)
        plan = build_left_deep_plan(query, [0, 1, 2, 3])
        assert plan.is_left_deep()
        assert plan.leaf_order() == [0, 1, 2, 3]

    def test_works_on_cyclic_graphs_via_spanning_tree(self):
        query = cycle_query(8, seed=2)
        result = IKKBZ().optimize(query)
        assert result.plan.relations == query.all_relations_mask


class TestGEQO:
    def test_seed_determinism(self):
        query = snowflake_query(12, seed=6)
        a = GEQO(seed=3, generations=40).optimize(query).cost
        b = GEQO(seed=3, generations=40).optimize(query).cost
        assert a == pytest.approx(b)

    def test_more_generations_never_hurts(self):
        query = snowflake_query(14, seed=6)
        short = GEQO(seed=1, generations=5).optimize(query).cost
        long = GEQO(seed=1, generations=200).optimize(query).cost
        assert long <= short * (1 + 1e-9)

    def test_effort_bounds_validated(self):
        with pytest.raises(ValueError):
            GEQO(effort=0)
        with pytest.raises(ValueError):
            GEQO(effort=11)

    def test_no_cross_products_in_result(self):
        query = star_query(10, seed=2)
        plan = GEQO(seed=5, generations=30).optimize(query).plan
        for node in plan.iter_joins():
            assert query.graph.is_connected_to(node.left.relations, node.right.relations)


class TestIDP:
    def test_idp1_requires_sane_k(self):
        with pytest.raises(ValueError):
            IDP1(k=1)

    def test_idp2_requires_sane_k(self):
        with pytest.raises(ValueError):
            IDP2(k=1)

    def test_idp2_equals_exact_when_k_covers_query(self):
        query = snowflake_query(9, seed=7)
        exact = MPDP().optimize(query).cost
        idp = IDP2(k=9).optimize(query).cost
        assert idp == pytest.approx(exact, rel=1e-9)

    def test_idp2_quality_improves_with_k(self):
        query = snowflake_query(30, seed=11)
        costs = {k: IDP2(k=k).optimize(query).cost for k in (3, 6, 10)}
        assert costs[10] <= costs[3] * (1 + 1e-9)

    def test_idp2_handles_medium_queries(self):
        query = star_query(35, seed=1)
        result = IDP2(k=8).optimize(query)
        assert result.plan.relations == query.all_relations_mask
        result.plan.validate()

    def test_idp2_merges_nested_stats(self):
        query = snowflake_query(20, seed=3)
        stats = IDP2(k=6).optimize(query).stats
        assert stats.ccp_pairs > 0
        assert stats.evaluated_pairs >= stats.ccp_pairs

    def test_idp1_produces_reasonable_plan(self):
        query = snowflake_query(18, seed=5)
        goo_cost = GOO().optimize(query).cost
        idp1_cost = IDP1(k=6).optimize(query).cost
        assert idp1_cost <= goo_cost * 5

    def test_whole_query_requirement(self):
        query = star_query(8, seed=0)
        with pytest.raises(OptimizationError):
            IDP2(k=4).optimize(query, subset=bms.from_indices([0, 1, 2]))


class TestLinDP:
    def test_linearized_dp_at_least_as_good_as_ikkbz(self):
        for seed in range(4):
            query = snowflake_query(15, seed=seed)
            ikkbz_cost = IKKBZ().optimize(query).cost
            lindp_cost = LinearizedDP().optimize(query).cost
            assert lindp_cost <= ikkbz_cost * (1 + 1e-9)

    def test_adaptive_uses_exact_for_small_queries(self):
        query = snowflake_query(9, seed=2)
        adaptive = AdaptiveLinDP().optimize(query).cost
        exact = DPCcp().optimize(query).cost
        assert adaptive == pytest.approx(exact, rel=1e-9)

    def test_adaptive_handles_medium_and_large(self):
        medium = snowflake_query(25, seed=3)
        result = AdaptiveLinDP().optimize(medium)
        assert result.plan.relations == medium.all_relations_mask
        large = snowflake_query(60, seed=3)
        result_large = AdaptiveLinDP(linearized_threshold=40, idp_k=20).optimize(large)
        assert result_large.plan.relations == large.all_relations_mask

    def test_can_produce_bushy_plans(self):
        # On a snowflake with several independent branches the interval DP
        # should find at least one bushy split for some seed.
        bushy_found = False
        for seed in range(6):
            query = snowflake_query(14, seed=seed)
            plan = LinearizedDP().optimize(query).plan
            if plan.is_bushy():
                bushy_found = True
                break
        assert bushy_found


class TestUnionDP:
    def test_requires_sane_k(self):
        with pytest.raises(ValueError):
            UnionDP(k=1)

    def test_equals_exact_when_k_covers_query(self):
        query = snowflake_query(9, seed=9)
        assert UnionDP(k=9).optimize(query).cost == pytest.approx(
            MPDP().optimize(query).cost, rel=1e-9)

    def test_partition_sizes_respect_k(self):
        query = snowflake_query(40, seed=13)
        uniondp = UnionDP(k=7)
        partitions = uniondp._partition(query)
        assert all(bms.popcount(p) <= 7 for p in partitions)
        covered = 0
        for partition in partitions:
            assert covered & partition == 0
            covered |= partition
        assert covered == query.all_relations_mask

    def test_partitions_are_connected(self):
        from repro.core.connectivity import is_connected
        query = random_connected_query(30, extra_edge_probability=0.1, seed=17)
        partitions = UnionDP(k=6)._partition(query)
        for partition in partitions:
            assert is_connected(query.graph, partition)

    def test_handles_large_star_and_snowflake(self):
        for maker in (star_query, snowflake_query):
            query = maker(45, seed=21)
            result = UnionDP(k=8).optimize(query)
            assert result.plan.relations == query.all_relations_mask
            result.plan.validate()

    def test_competitive_with_goo_on_snowflake(self):
        query = snowflake_query(40, seed=23, selection_probability=0.8)
        goo_cost = GOO().optimize(query).cost
        uniondp_cost = UnionDP(k=10).optimize(query).cost
        assert uniondp_cost <= goo_cost * 1.5
