"""End-to-end integration tests spanning SQL, optimization, execution and heuristics."""

import pytest

from repro.bench import instance_for_algorithm, optimization_cost_cents
from repro.catalog import Catalog
from repro.core import bitmapset as bms
from repro.execution import CostBasedRuntimeModel, InMemoryExecutor, SyntheticDataset
from repro.gpu import DPSubGpu, MPDPGpu
from repro.heuristics import GOO, IDP2, UnionDP
from repro.optimizers import DPCcp, DPSub, MPDP
from repro.parallel import ParallelCPUModel
from repro.sql import parse_join_query
from repro.workloads import (
    build_musicbrainz_catalog,
    musicbrainz_query,
    snowflake_query,
    star_query,
)


class TestSqlToExecutionPipeline:
    def test_parse_optimize_execute(self):
        """The full user journey: SQL text -> plan -> rows."""
        catalog = Catalog()
        for name, rows in [("orders", 8_000), ("lineitem", 30_000), ("customer", 2_000)]:
            table = catalog.add_table(name, rows)
            table.add_column("id", is_primary_key=True)
        catalog.table("lineitem").add_column("order_id", n_distinct=8_000)
        catalog.table("orders").add_column("customer_id", n_distinct=2_000)
        catalog.add_foreign_key("lineitem", "order_id", "orders", "id")
        catalog.add_foreign_key("orders", "customer_id", "customer", "id")

        sql = ("select 1 from lineitem, orders, customer "
               "where lineitem.order_id = orders.id and orders.customer_id = customer.id")
        query = parse_join_query(sql, catalog).query

        plans = {name: cls().optimize(query).plan for name, cls in
                 [("MPDP", MPDP), ("DPccp", DPCcp), ("GOO", GOO)]}
        dataset = SyntheticDataset(query, scale=1.0, max_rows=30_000, seed=3)
        executor = InMemoryExecutor(dataset)
        row_counts = {name: executor.execute(plan).rows for name, plan in plans.items()}
        assert len(set(row_counts.values())) == 1
        # Every lineitem matches exactly one order and one customer.
        assert row_counts["MPDP"] == dataset.rows(query.graph.relation_names.index("lineitem"))


class TestMusicBrainzEndToEnd:
    def test_exact_pipeline_with_gpu_and_parallel_models(self):
        query = musicbrainz_query(13, seed=8)
        cpu = MPDP().optimize(query)
        gpu = MPDPGpu().optimize(query)
        baseline_gpu = DPSubGpu().optimize(query)
        assert gpu.cost == pytest.approx(cpu.cost, rel=1e-9)
        # MPDP's simulated GPU time should not exceed the DPsub baseline's.
        assert gpu.stats.extra["gpu_total_seconds"] <= baseline_gpu.stats.extra["gpu_total_seconds"] * 1.2

        model = ParallelCPUModel()
        t1 = model.simulate(cpu.stats, 1, "MPDP")
        t24 = model.simulate(cpu.stats, 24, "MPDP")
        assert t24 < t1

        instance = instance_for_algorithm("MPDP (GPU)")
        cents = optimization_cost_cents(gpu.stats.extra["gpu_total_seconds"], instance)
        assert cents > 0

    def test_execution_vs_optimization_ratio_shape(self):
        """Figure 10's qualitative claim: with a fast optimizer the execution
        time dominates, i.e. the ratio exec/opt stays well above what the slow
        exhaustive baseline achieves on the same query."""
        query = musicbrainz_query(11, seed=5)
        runtime_model = CostBasedRuntimeModel()
        fast = MPDPGpu().optimize(query)
        slow = DPSub(unrank_filter=True).optimize(query)
        execution_seconds = runtime_model.runtime_seconds(fast.plan)
        fast_ratio = execution_seconds / fast.stats.extra["gpu_total_seconds"]
        slow_ratio = execution_seconds / max(slow.stats.wall_time_seconds, 1e-9)
        assert fast_ratio > slow_ratio


class TestHeuristicsAtScale:
    def test_idp2_and_uniondp_on_100_relation_snowflake(self):
        query = snowflake_query(100, seed=31)
        goo = GOO().optimize(query)
        idp2 = IDP2(k=8, max_iterations=6).optimize(query)
        uniondp = UnionDP(k=8).optimize(query)
        for result in (goo, idp2, uniondp):
            result.plan.validate()
            assert result.plan.relations == query.all_relations_mask
        # The MPDP-powered heuristics explore a superset of GOO's space, so
        # they should not be dramatically worse than GOO.
        assert idp2.cost <= goo.cost * 2.0
        assert uniondp.cost <= goo.cost * 2.0

    def test_star_schema_heuristics_find_near_exact_plans(self):
        query = star_query(14, seed=9, selection_probability=1.0)
        # 14 relations is still exactly optimizable with MPDP in test time.
        exact = MPDP().optimize(query)
        for heuristic in (IDP2(k=10), UnionDP(k=10)):
            cost = heuristic.optimize(query).cost
            assert cost <= exact.cost * 1.6

    def test_contracted_plans_round_trip_to_root_relations(self):
        query = snowflake_query(40, seed=12)
        result = UnionDP(k=6).optimize(query)
        leaves = sorted(leaf.relation_index for leaf in result.plan.iter_leaves())
        assert leaves == list(range(40))
        assert bms.popcount(result.plan.relations) == 40


class TestHeuristicFallbackStory:
    def test_mpdp_extends_exact_reach_over_dpsub(self):
        """Section 1: for the same budget of evaluated join pairs, MPDP can
        solve larger star queries exactly than DPsub can (the rest of the
        paper's 12 -> 25 relation jump comes from GPU parallelism, which the
        GPU model covers separately)."""
        from repro.analysis import star_dpsub_evaluated_pairs, star_mpdp_evaluated_pairs

        budget = DPSub().optimize(star_query(10, seed=2)).stats.evaluated_pairs
        # MPDP stays below the same pair budget on a bigger query...
        mpdp_pairs = MPDP().optimize(star_query(12, seed=2)).stats.evaluated_pairs
        assert mpdp_pairs < budget
        # ... and the analytic counters show the gap keeps widening at the
        # paper's scale: MPDP at 25 relations evaluates orders of magnitude
        # fewer pairs than DPsub would at 25 relations.
        assert star_mpdp_evaluated_pairs(25) * 50 < star_dpsub_evaluated_pairs(25)
        assert star_mpdp_evaluated_pairs(14) < star_dpsub_evaluated_pairs(12)
