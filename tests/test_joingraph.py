"""Tests for the join graph representation."""

import pytest

from repro.core import bitmapset as bms
from repro.core.joingraph import JoinEdge, JoinGraph


@pytest.fixture
def chain_graph():
    graph = JoinGraph(4, ["a", "b", "c", "d"])
    graph.add_edge(0, 1, 0.1)
    graph.add_edge(1, 2, 0.2)
    graph.add_edge(2, 3, 0.3)
    return graph


class TestJoinEdge:
    def test_endpoints_ordered(self):
        edge = JoinEdge(5, 2, 0.5)
        assert edge.endpoints == (2, 5)
        assert edge.mask == bms.bit(2) | bms.bit(5)

    def test_self_join_rejected(self):
        with pytest.raises(ValueError):
            JoinEdge(1, 1, 0.5)

    @pytest.mark.parametrize("selectivity", [0.0, -0.5, 1.5])
    def test_invalid_selectivity(self, selectivity):
        with pytest.raises(ValueError):
            JoinEdge(0, 1, selectivity)

    def test_selectivity_of_one_allowed(self):
        assert JoinEdge(0, 1, 1.0).selectivity == 1.0


class TestConstruction:
    def test_requires_positive_relations(self):
        with pytest.raises(ValueError):
            JoinGraph(0)

    def test_default_relation_names(self):
        graph = JoinGraph(3)
        assert graph.relation_names == ["R0", "R1", "R2"]

    def test_name_length_mismatch(self):
        with pytest.raises(ValueError):
            JoinGraph(3, ["a", "b"])

    def test_add_edge_out_of_range(self):
        graph = JoinGraph(2)
        with pytest.raises(ValueError):
            graph.add_edge(0, 2)

    def test_duplicate_edge_keeps_more_selective(self):
        graph = JoinGraph(2)
        graph.add_edge(0, 1, 0.5)
        merged = graph.add_edge(1, 0, 0.2, is_pk_fk=True)
        assert graph.n_edges == 1
        assert merged.selectivity == 0.2
        assert merged.is_pk_fk
        assert graph.edge_between(0, 1).selectivity == 0.2

    def test_close_equivalence_classes(self):
        graph = JoinGraph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        added = graph.close_equivalence_classes([[0, 1, 2]])
        assert added == 1
        assert graph.has_edge(0, 2)
        # Closing again adds nothing.
        assert graph.close_equivalence_classes([[0, 1, 2]]) == 0


class TestQueries:
    def test_all_relations_mask(self, chain_graph):
        assert chain_graph.all_relations_mask == 0b1111

    def test_adjacency(self, chain_graph):
        assert chain_graph.adjacency(0) == bms.bit(1)
        assert chain_graph.adjacency(1) == bms.bit(0) | bms.bit(2)
        with pytest.raises(ValueError):
            chain_graph.adjacency(9)

    def test_degree(self, chain_graph):
        assert chain_graph.degree(0) == 1
        assert chain_graph.degree(1) == 2

    def test_neighbours_of_set(self, chain_graph):
        middle = bms.from_indices([1, 2])
        assert chain_graph.neighbours_of_set(middle) == bms.from_indices([0, 3])
        assert chain_graph.neighbours_of_set(chain_graph.all_relations_mask) == 0

    def test_is_connected_to(self, chain_graph):
        assert chain_graph.is_connected_to(bms.bit(0), bms.bit(1))
        assert not chain_graph.is_connected_to(bms.bit(0), bms.bit(3))
        assert chain_graph.is_connected_to(bms.from_indices([0, 1]), bms.from_indices([2, 3]))

    def test_edges_within(self, chain_graph):
        inner = list(chain_graph.edges_within(bms.from_indices([0, 1, 2])))
        assert {edge.endpoints for edge in inner} == {(0, 1), (1, 2)}

    def test_edges_between(self, chain_graph):
        crossing = list(chain_graph.edges_between(bms.from_indices([0, 1]),
                                                  bms.from_indices([2, 3])))
        assert {edge.endpoints for edge in crossing} == {(1, 2)}

    def test_edge_between_missing(self, chain_graph):
        assert chain_graph.edge_between(0, 3) is None
        assert not chain_graph.has_edge(0, 3)

    def test_induced_adjacency(self, chain_graph):
        induced = chain_graph.induced_adjacency(bms.from_indices([0, 1, 3]))
        assert induced[0] == bms.bit(1)
        assert induced[1] == bms.bit(0)
        assert induced[3] == 0

    def test_copy_is_independent(self, chain_graph):
        clone = chain_graph.copy()
        clone.add_edge(0, 3, 0.9)
        assert clone.n_edges == 4
        assert chain_graph.n_edges == 3
        assert clone.relation_names == chain_graph.relation_names
