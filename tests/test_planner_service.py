"""The concurrent planner service: striped cache, admission control, pools.

Covers ISSUE 8's acceptance criteria:

* the striped :class:`PlanCache`: lock-free read fast path, per-stripe LRU,
  atomic (race-free) stat snapshots under concurrent hammering, and
  warm-start persistence round-trips (dump -> restart -> warm hit rate);
* :class:`AdaptivePlanner` thread-safety: eight threads hammering one
  planner produce outcomes bit-identical to serial planning, and cacheable
  misses are single-flighted (one planning run per signature under a
  thundering herd);
* :class:`PlannerService`: bounded-queue admission control sheds under an
  undersized queue, queue deadlines expire waiting requests, per-request
  errors don't kill workers, close() drains and persists;
* the process-wide kernel worker-pool registry
  (:data:`repro.exec.multicore.POOL_REGISTRY`) shared across backends;
* the ``repro-plan serve`` / ``repro-plan replay`` CLI subcommands.
"""

import json
import pickle
import threading
import time

import pytest

from repro.core.joingraph import JoinGraph
from repro.core.query import QueryInfo
from repro.planner import (
    AdaptivePlanner,
    PlanCache,
    PlannerService,
    ServiceClosed,
    ServiceReply,
    replay_zipfian,
    zipfian_indices,
)
from repro.planner.cli import main as cli_main
from repro.workloads import (
    chain_query,
    clique_query,
    cycle_query,
    random_connected_query,
    snowflake_query,
    star_query,
)

pytestmark = pytest.mark.service

#: Mixed-shape regenerable workload: (factory, kwargs) pairs.
WORKLOAD = [
    (star_query, dict(n_relations=8, seed=1)),
    (star_query, dict(n_relations=10, seed=2)),
    (snowflake_query, dict(n_relations=10, seed=1)),
    (chain_query, dict(n_relations=9, seed=1)),
    (cycle_query, dict(n_relations=8, seed=1)),
    (clique_query, dict(n_relations=7, seed=1)),
    (random_connected_query, dict(n_relations=10, seed=3)),
]


def _workload_queries():
    return [factory(**kwargs) for factory, kwargs in WORKLOAD]


def _disconnected_query():
    graph = JoinGraph(3)
    graph.add_edge(0, 1, 0.5)
    return QueryInfo(graph, [10.0, 20.0, 30.0])


# --------------------------------------------------------------------- #
# Striped plan cache
# --------------------------------------------------------------------- #
class TestStripedCache:
    def test_default_striping_scales_with_capacity(self):
        assert PlanCache(max_entries=4096).stripe_count == 16
        assert PlanCache(max_entries=256).stripe_count == 4
        assert PlanCache(max_entries=4).stripe_count == 1  # exact LRU

    def test_explicit_stripes_clamped_to_capacity(self):
        cache = PlanCache(max_entries=3, stripes=8)
        assert cache.stripe_count == 3
        with pytest.raises(ValueError):
            PlanCache(max_entries=8, stripes=0)

    def test_capacity_enforced_across_stripes(self):
        cache = PlanCache(max_entries=64, stripes=4)
        for index in range(500):
            cache.put(f"key-{index}", index)
        assert len(cache) <= 64
        assert cache.evictions == 500 - len(cache)

    def test_peek_has_no_side_effects(self):
        cache = PlanCache(max_entries=8)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None
        info = cache.cache_info()
        assert info["hits"] == 0 and info["misses"] == 0

    def test_journaled_hits_are_counted_and_refresh_lru(self):
        cache = PlanCache(max_entries=2, stripes=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # journaled, not yet drained
        cache.put("c", 3)                # drain applies recency first
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.hits == 1

    def test_cache_info_snapshot_is_consistent_under_hammering(self):
        cache = PlanCache(max_entries=512, stripes=8)
        n_threads, ops = 8, 2_000
        barrier = threading.Barrier(n_threads)

        def hammer(thread_index):
            barrier.wait()
            for op in range(ops):
                key = f"key-{(thread_index * 7 + op * 13) % 64}"
                if cache.get(key) is None:
                    cache.put(key, key)

        threads = [threading.Thread(target=hammer, args=(index,))
                   for index in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        info = cache.cache_info()
        # No lost updates: every lookup is accounted exactly once.
        assert info["hits"] + info["misses"] == n_threads * ops
        assert info["entries"] <= 64
        assert cache.hit_rate == info["hits"] / (info["hits"] + info["misses"])

    def test_invalidate_and_clear_across_stripes(self):
        cache = PlanCache(max_entries=64, stripes=4)
        for index in range(32):
            cache.put(f"star:n{index}:x", index)
        assert cache.invalidate_where("star:") == 32
        for index in range(8):
            cache.put(f"k{index}", index)
        cache.clear()
        assert len(cache) == 0
        assert cache.invalidations == 40


# --------------------------------------------------------------------- #
# Persistence: dump -> restart -> warm hit rate
# --------------------------------------------------------------------- #
class TestCachePersistence:
    def test_round_trip_restores_bit_identical_outcomes(self, tmp_path):
        path = tmp_path / "plans.cache"
        first = AdaptivePlanner()
        cold = [first.plan(query) for query in _workload_queries()]
        saved = first.cache.save(path)
        assert saved == len(WORKLOAD)

        restarted = AdaptivePlanner()
        assert restarted.cache.restore(path) == saved
        for query, reference in zip(_workload_queries(), cold):
            outcome = restarted.plan(query)
            assert outcome.decision.cache_hit is True
            assert outcome.cost == reference.cost
            assert outcome.plan.structure() == reference.plan.structure()
        # Every post-restore plan was a warm hit.
        assert restarted.cache_info()["hit_rate"] == 1.0

    def test_restore_into_smaller_cache_keeps_tail(self, tmp_path):
        path = tmp_path / "plans.cache"
        cache = PlanCache(max_entries=64, stripes=1)
        for index in range(32):
            cache.put(f"key-{index}", index)
        cache.save(path)
        small = PlanCache(max_entries=8, stripes=1)
        assert small.restore(path) == 32
        assert len(small) == 8
        assert "key-31" in small  # most-recently-used survives

    def test_restore_rejects_non_snapshots(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"not a cache")
        with pytest.raises(ValueError):
            PlanCache().restore(path)
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(ValueError):
            PlanCache().restore(path)
        with pytest.raises(FileNotFoundError):
            PlanCache().restore(tmp_path / "missing.cache")


# --------------------------------------------------------------------- #
# Planner thread-safety
# --------------------------------------------------------------------- #
class TestPlannerConcurrency:
    def test_eight_threads_bit_identical_to_serial(self):
        serial = AdaptivePlanner(enable_cache=False)
        references = [serial.plan(query) for query in _workload_queries()]

        shared = AdaptivePlanner()
        n_threads, rounds = 8, 5
        barrier = threading.Barrier(n_threads)
        failures = []

        def hammer(thread_index):
            barrier.wait()
            for round_index in range(rounds):
                # Regenerated query objects, like a service parsing each
                # request fresh; order varies per thread.
                order = range(len(WORKLOAD)) if thread_index % 2 == 0 \
                    else reversed(range(len(WORKLOAD)))
                for query_index in order:
                    factory, kwargs = WORKLOAD[query_index]
                    outcome = shared.plan(factory(**kwargs))
                    reference = references[query_index]
                    if (outcome.cost != reference.cost
                            or outcome.plan.structure()
                            != reference.plan.structure()
                            or outcome.decision.algorithm
                            != reference.decision.algorithm):
                        failures.append((thread_index, query_index))

        threads = [threading.Thread(target=hammer, args=(index,))
                   for index in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        info = shared.cache_info()
        assert info["hits"] + info["misses"] == n_threads * rounds * len(WORKLOAD)

    def test_singleflight_coalesces_thundering_herd(self):
        planned = []
        planned_lock = threading.Lock()

        class CountingPlanner(AdaptivePlanner):
            def _plan_uncached(self, query, profile, signature, cacheable):
                with planned_lock:
                    planned.append(signature)
                time.sleep(0.02)  # hold the flight open so waiters pile up
                return super()._plan_uncached(query, profile, signature,
                                              cacheable)

        planner = CountingPlanner()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outcomes = [None] * n_threads

        def request(thread_index):
            query = star_query(10, seed=42)
            barrier.wait()
            outcomes[thread_index] = planner.plan(query)

        threads = [threading.Thread(target=request, args=(index,))
                   for index in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly one thread planned; everyone else was served the cached
        # outcome (as an admission hit or a coalesced wait).
        assert len(planned) == 1
        costs = {outcome.cost for outcome in outcomes}
        assert len(costs) == 1
        assert sum(1 for o in outcomes if o.decision.cache_hit) == n_threads - 1
        assert planner.coalesced_plans + sum(
            1 for _ in outcomes) >= n_threads  # coalesced subset of hits


# --------------------------------------------------------------------- #
# PlannerService: admission control, deadlines, lifecycle
# --------------------------------------------------------------------- #
class _SlowPlanner(AdaptivePlanner):
    """Planner whose every plan() takes ``delay`` seconds (cache disabled)."""

    def __init__(self, delay):
        super().__init__(enable_cache=False)
        self.delay = delay

    def plan(self, query):
        time.sleep(self.delay)
        return super().plan(query)


class TestPlannerService:
    def test_basic_ok_reply_matches_serial(self):
        query = star_query(8, seed=1)
        reference = AdaptivePlanner(enable_cache=False).plan(
            star_query(8, seed=1))
        with PlannerService(workers=2) as service:
            reply = service.plan(query)
            assert reply.status == "ok"
            assert reply.outcome.cost == reference.cost
            assert reply.plan_seconds >= 0.0
            stats = service.stats()
        assert stats["statuses"]["ok"] == 1
        assert stats["submitted"] == 1
        assert "kernel_pools" in stats

    def test_undersized_queue_sheds(self):
        service = PlannerService(_SlowPlanner(0.05), workers=1, queue_limit=1)
        try:
            futures = [service.submit(star_query(6, seed=s))
                       for s in range(8)]
            replies = [future.result() for future in futures]
        finally:
            service.close()
        statuses = [reply.status for reply in replies]
        assert statuses.count("shed") >= 5  # 1 in flight + 1 queued at most
        assert statuses.count("ok") >= 1
        stats = service.stats()
        assert stats["statuses"]["shed"] == statuses.count("shed")
        # Shed replies resolve instantly, with no planning time charged.
        shed = [r for r in replies if r.status == "shed"]
        assert all(r.outcome is None and r.plan_seconds == 0.0 for r in shed)

    def test_deadline_expires_queued_requests(self):
        service = PlannerService(_SlowPlanner(0.1), workers=1, queue_limit=8)
        try:
            blocker = service.submit(star_query(6, seed=0))
            hopeless = service.submit(star_query(6, seed=1),
                                      deadline_seconds=0.01)
            assert hopeless.result().status == "expired"
            assert blocker.result().status == "ok"
        finally:
            service.close()
        assert service.stats()["statuses"]["expired"] == 1

    def test_per_request_errors_do_not_kill_workers(self):
        with PlannerService(workers=1) as service:
            bad = service.plan(_disconnected_query())
            assert bad.status == "error"
            assert "disconnected" in bad.error
            good = service.plan(star_query(8, seed=1))
            assert good.status == "ok"

    def test_closed_service_rejects_submissions(self):
        service = PlannerService(workers=1)
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceClosed):
            service.submit(star_query(6, seed=0))

    def test_warm_start_across_restarts(self, tmp_path):
        path = str(tmp_path / "service.cache")
        queries = _workload_queries()
        with PlannerService(warm_start_path=path, workers=2) as first:
            for query in queries:
                assert first.plan(query).status == "ok"
        # close() persisted the cache; a fresh service restores it.
        with PlannerService(warm_start_path=path, workers=2) as second:
            assert second.stats()["restored_entries"] == len(queries)
            for query in _workload_queries():
                reply = second.plan(query)
                assert reply.status == "ok"
                assert reply.outcome.decision.cache_hit is True
            assert second.stats()["cache"]["hit_rate"] == 1.0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PlannerService(workers=0)
        with pytest.raises(ValueError):
            PlannerService(queue_limit=0)


# --------------------------------------------------------------------- #
# Replay harness
# --------------------------------------------------------------------- #
class TestReplayHarness:
    def test_zipfian_stream_is_skewed_and_deterministic(self):
        stream = zipfian_indices(16, 5_000, s=1.2, seed=3)
        assert stream == zipfian_indices(16, 5_000, s=1.2, seed=3)
        assert set(stream) <= set(range(16))
        assert stream.count(0) > stream.count(15)

    def test_replay_summary_shape_and_callbacks(self):
        queries = _workload_queries()
        seen = []
        seen_lock = threading.Lock()

        def on_reply(query_index, reply):
            assert isinstance(reply, ServiceReply)
            with seen_lock:
                seen.append(query_index)

        with PlannerService(workers=2) as service:
            summary = replay_zipfian(service, queries, 500,
                                     client_threads=2, seed=5,
                                     on_reply=on_reply)
        assert summary["statuses"]["ok"] == 500
        assert len(seen) == 500
        assert summary["qps"] > 0
        assert summary["p99_ms"] >= summary["p50_ms"] >= 0
        assert summary["hit_rate"] > 0.8
        assert summary["shed"] == 0

    def test_replay_validates_inputs(self):
        with pytest.raises(ValueError):
            zipfian_indices(0, 10)
        with PlannerService(workers=1) as service:
            with pytest.raises(ValueError):
                replay_zipfian(service, [star_query(6, seed=0)], 10,
                               client_threads=0)


# --------------------------------------------------------------------- #
# Kernel worker-pool registry
# --------------------------------------------------------------------- #
@pytest.mark.multicore
class TestWorkerPoolRegistry:
    def test_lease_shares_and_info_counts(self):
        mc = pytest.importorskip("repro.exec.multicore")
        mc.shutdown_worker_pools()
        try:
            pool = mc.POOL_REGISTRY.lease(2)
            assert mc.POOL_REGISTRY.lease(2) is pool  # shared, no respawn
            assert mc._pool_for(2) is pool            # legacy path, same pool
            assert mc._POOLS.get(2) is pool           # back-compat alias
            info = mc.pool_registry_info()
            assert info["pools"]["2"]["alive"] is True
            assert info["pools"]["2"]["workers"] == 2
            assert info["pools_created"] >= 1
        finally:
            mc.shutdown_worker_pools()
        assert mc._POOLS == {}
        assert mc.pool_registry_info()["pools"] == {}

    def test_service_stats_surface_registry(self):
        mc = pytest.importorskip("repro.exec.multicore")
        mc.shutdown_worker_pools()
        try:
            mc.POOL_REGISTRY.lease(1)
            with PlannerService(workers=1) as service:
                pools = service.stats()["kernel_pools"]["pools"]
            assert "1" in pools
        finally:
            mc.shutdown_worker_pools()


# --------------------------------------------------------------------- #
# CLI: serve / replay subcommands
# --------------------------------------------------------------------- #
class TestServeReplayCLI:
    @pytest.fixture()
    def query_file(self, tmp_path):
        path = tmp_path / "queries.sql"
        path.write_text(
            "# mixed shapes\n"
            "select * from a, b, c, d where a.x = b.x and a.y = c.y "
            "and a.z = d.z;\n"
            "\n"
            "select * from t1, t2, t3 where t1.k = t2.k and t2.j = t3.j\n"
            "select * from p, q, r where p.a = q.a and q.b = r.b "
            "and r.c = p.c\n")
        return str(path)

    def test_serve_prints_replies_and_summary(self, query_file, capsys):
        assert cli_main(["serve", "--queries", query_file,
                         "--threads", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok algorithm=") == 3
        assert "served 3 requests" in out

    def test_replay_prints_bench_style_summary(self, query_file, capsys):
        assert cli_main(["replay", "--queries", query_file,
                         "--requests", "200", "--threads", "2",
                         "--seed", "1"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_requests"] == 200
        assert summary["n_distinct"] == 3
        assert summary["statuses"]["ok"] == 200
        for key in ("qps", "p50_ms", "p99_ms", "hit_rate", "shed"):
            assert key in summary

    def test_serve_warm_start_round_trip(self, query_file, tmp_path, capsys):
        cache_path = str(tmp_path / "warm.cache")
        assert cli_main(["serve", "--queries", query_file,
                         "--warm-start", cache_path]) == 0
        capsys.readouterr()
        assert cli_main(["serve", "--queries", query_file,
                         "--warm-start", cache_path]) == 0
        out = capsys.readouterr().out
        assert "warm-started 3 entries" in out
        assert "cache_hit=True" in out

    def test_missing_query_file_errors(self, capsys):
        assert cli_main(["replay", "--queries", "/nonexistent.sql"]) == 1
        assert "error" in capsys.readouterr().err

    def test_empty_statement_file_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.sql"
        path.write_text("# nothing here\n")
        assert cli_main(["serve", "--queries", str(path)]) == 1
        assert cli_main(["replay", "--queries", str(path)]) == 1

    def test_invalid_numeric_arguments(self, query_file):
        assert cli_main(["replay", "--queries", query_file,
                         "--requests", "0"]) == 2
        assert cli_main(["serve", "--queries", query_file,
                         "--threads", "0"]) == 2

    def test_legacy_flat_invocation_still_plans(self, capsys):
        assert cli_main(["select * from a, b where a.x = b.x",
                         "--no-plan"]) == 0
        assert "algorithm : MPDP:Tree" in capsys.readouterr().out
