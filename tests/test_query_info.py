"""Tests for QueryInfo: cardinalities, plan construction, contraction."""

import pytest

from repro.core import bitmapset as bms
from repro.core.joingraph import JoinGraph
from repro.core.query import QueryInfo
from repro.cost import CoutCostModel, PostgresCostModel
from repro.optimizers import MPDP
from repro.workloads import snowflake_query, star_query


def small_chain_query():
    graph = JoinGraph(4, ["a", "b", "c", "d"])
    graph.add_edge(0, 1, 0.01)
    graph.add_edge(1, 2, 0.05)
    graph.add_edge(2, 3, 0.1)
    return QueryInfo(graph, [1000.0, 2000.0, 500.0, 100.0], PostgresCostModel(), name="chain4")


class TestBasics:
    def test_requires_cardinalities(self):
        graph = JoinGraph(2)
        graph.add_edge(0, 1, 0.5)
        with pytest.raises(ValueError):
            QueryInfo(graph)

    def test_shape_properties(self):
        query = small_chain_query()
        assert query.n_relations == 4
        assert query.all_relations_mask == 0b1111
        assert not query.is_contracted

    def test_rows_delegates_to_estimator(self):
        query = small_chain_query()
        assert query.rows(0b0011) == pytest.approx(1000 * 2000 * 0.01)

    def test_leaf_plan_cached(self):
        query = small_chain_query()
        assert query.leaf_plan(0) is query.leaf_plan(0)
        assert query.leaf_plan(0).rows == 1000.0

    def test_join_requires_disjoint_sets(self):
        query = small_chain_query()
        with pytest.raises(ValueError):
            query.join(0b01, 0b01, query.leaf_plan(0), query.leaf_plan(0))

    def test_join_builds_costed_plan(self):
        query = small_chain_query()
        plan = query.join(0b01, 0b10, query.leaf_plan(0), query.leaf_plan(1))
        assert plan.relations == 0b11
        assert plan.rows == pytest.approx(query.rows(0b11))
        assert plan.cost > 0

    def test_edge_weight_positive(self):
        query = small_chain_query()
        assert query.edge_weight(0, 1) > 0

    def test_vertex_masks_default_identity(self):
        query = small_chain_query()
        assert query.vertex_masks == [0b1, 0b10, 0b100, 0b1000]
        assert query.root_mask_of(0b101) == 0b101

    def test_vertices_covering_identity(self):
        query = small_chain_query()
        assert query.vertices_covering(0b101) == 0b101
        assert query.vertices_covering(0) == 0

    def test_validation_of_vertex_masks_length(self):
        graph = JoinGraph(2)
        graph.add_edge(0, 1, 0.5)
        with pytest.raises(ValueError):
            QueryInfo(graph, [10, 10], vertex_masks=[1])


class TestRecost:
    def test_recost_under_other_model(self):
        query = small_chain_query()
        result = MPDP().optimize(query)
        cout_query = QueryInfo(query.graph, query.cardinality.base_cardinalities,
                               CoutCostModel(), name="cout")
        recosted = cout_query.recost(result.plan)
        assert recosted.relations == result.plan.relations
        # C_out cost of the same tree equals the sum of intermediate sizes.
        expected = sum(node.rows for node in result.plan.iter_joins())
        assert recosted.cost == pytest.approx(expected, rel=1e-6)

    def test_plan_cost_matches_recost(self):
        query = small_chain_query()
        result = MPDP().optimize(query)
        assert query.plan_cost(result.plan) == pytest.approx(result.cost, rel=1e-9)


class TestContraction:
    def test_contract_validation(self):
        query = small_chain_query()
        plan01 = MPDP().optimize(query, subset=0b0011).plan
        with pytest.raises(ValueError):
            query.contract([0b0011], [plan01])  # does not cover everything
        with pytest.raises(ValueError):
            query.contract([0b0011, 0b0110, 0b1000],
                           [plan01, plan01, query.leaf_plan(3)])  # overlap
        with pytest.raises(ValueError):
            query.contract([0b0011, 0b1100], [plan01])  # plan count mismatch

    def test_contract_preserves_cardinalities(self):
        query = small_chain_query()
        plan01 = MPDP().optimize(query, subset=0b0011).plan
        contracted = query.contract([0b0011, 0b0100, 0b1000],
                                    [plan01, query.leaf_plan(2), query.leaf_plan(3)])
        assert contracted.is_contracted
        assert contracted.n_relations == 3
        # Vertex 0 of the contracted query covers original relations {0, 1}.
        assert contracted.vertex_masks[0] == 0b0011
        # Joining everything gives the same cardinality as in the original.
        assert contracted.rows(contracted.all_relations_mask) == pytest.approx(
            query.rows(query.all_relations_mask))

    def test_contract_edges_connect_adjacent_partitions(self):
        query = small_chain_query()
        plan01 = MPDP().optimize(query, subset=0b0011).plan
        contracted = query.contract([0b0011, 0b0100, 0b1000],
                                    [plan01, query.leaf_plan(2), query.leaf_plan(3)])
        # chain a-b | c | d: partition 0 touches c, c touches d, 0 not adjacent d.
        assert contracted.graph.has_edge(0, 1)
        assert contracted.graph.has_edge(1, 2)
        assert not contracted.graph.has_edge(0, 2)

    def test_contract_leaf_plans_are_used(self):
        query = small_chain_query()
        plan01 = MPDP().optimize(query, subset=0b0011).plan
        contracted = query.contract([0b0011, 0b0100, 0b1000],
                                    [plan01, query.leaf_plan(2), query.leaf_plan(3)])
        assert contracted.leaf_plan(0) is plan01
        # Optimizing the contracted query yields a plan over the *original*
        # relation space that covers every original relation.
        result = MPDP().optimize(contracted)
        assert result.plan.relations == query.all_relations_mask
        result.plan.validate()

    def test_contracted_plan_cost_at_least_flat_optimum(self):
        query = snowflake_query(9, seed=5)
        optimal = MPDP().optimize(query)
        sub = 0
        # Contract an arbitrary connected pair to simulate one IDP2 step.
        edge = query.graph.edges[0]
        sub = bms.bit(edge.left) | bms.bit(edge.right)
        sub_plan = MPDP().optimize(query, subset=sub).plan
        partitions = [sub] + [bms.bit(v) for v in bms.iter_bits(query.all_relations_mask & ~sub)]
        plans = [sub_plan] + [query.leaf_plan(v) for v in bms.iter_bits(query.all_relations_mask & ~sub)]
        contracted = query.contract(partitions, plans)
        contracted_result = MPDP().optimize(contracted)
        assert contracted_result.cost >= optimal.cost - 1e-9

    def test_vertices_covering_contracted(self):
        query = small_chain_query()
        plan01 = MPDP().optimize(query, subset=0b0011).plan
        contracted = query.contract([0b0011, 0b0100, 0b1000],
                                    [plan01, query.leaf_plan(2), query.leaf_plan(3)])
        # Root relations {0,1} map to contracted vertex 0.
        assert contracted.vertices_covering(0b0011) == 0b001
        # Root relations {0} cut through the composite vertex -> None.
        assert contracted.vertices_covering(0b0001) is None
        assert contracted.vertices_covering(0b1111) == 0b111
