"""Tests for the minimal SQL front end."""

import pytest

from repro.catalog import Catalog
from repro.optimizers import MPDP
from repro.sql import SQLParseError, parse_join_query


@pytest.fixture
def tpch_catalog():
    catalog = Catalog()
    specs = {
        "lineitem": 6_000_000,
        "orders": 1_500_000,
        "part": 200_000,
        "customer": 150_000,
    }
    for name, rows in specs.items():
        table = catalog.add_table(name, rows)
        table.add_column(f"{name[0]}_key", is_primary_key=True)
    catalog.table("lineitem").add_column("l_orderkey", n_distinct=1_500_000)
    catalog.table("lineitem").add_column("l_partkey", n_distinct=200_000)
    catalog.table("orders").add_column("o_orderkey", n_distinct=1_500_000)
    catalog.table("orders").add_column("o_custkey", n_distinct=150_000)
    catalog.table("part").add_column("p_partkey", n_distinct=200_000)
    catalog.table("customer").add_column("c_custkey", n_distinct=150_000)
    catalog.add_foreign_key("lineitem", "l_orderkey", "orders", "o_orderkey")
    catalog.add_foreign_key("lineitem", "l_partkey", "part", "p_partkey")
    catalog.add_foreign_key("orders", "o_custkey", "customer", "c_custkey")
    return catalog


FIGURE1_QUERY = """
select o_orderdate from lineitem, orders, part, customer
where part.p_partkey = lineitem.l_partkey and orders.o_orderkey = lineitem.l_orderkey
and orders.o_custkey = customer.c_custkey
"""


class TestParsing:
    def test_figure1_example(self, tpch_catalog):
        parsed = parse_join_query(FIGURE1_QUERY, tpch_catalog)
        query = parsed.query
        assert query.n_relations == 4
        assert query.graph.n_edges == 3
        assert len(parsed.join_predicates) == 3
        # The join graph of Figure 1: lineitem joins part and orders; orders
        # joins customer; part and customer have no direct edge.
        names = query.graph.relation_names
        lineitem, orders, part, customer = (names.index(n) for n in
                                            ("lineitem", "orders", "part", "customer"))
        assert query.graph.has_edge(lineitem, part)
        assert query.graph.has_edge(lineitem, orders)
        assert query.graph.has_edge(orders, customer)
        assert not query.graph.has_edge(part, customer)

    def test_parsed_query_is_optimizable(self, tpch_catalog):
        query = parse_join_query(FIGURE1_QUERY, tpch_catalog).query
        result = MPDP().optimize(query)
        result.plan.validate()
        assert result.plan.relations == query.all_relations_mask

    def test_aliases(self, tpch_catalog):
        sql = ("select 1 from lineitem l, orders as o "
               "where l.l_orderkey = o.o_orderkey")
        parsed = parse_join_query(sql, tpch_catalog)
        assert parsed.aliases == {"l": "lineitem", "o": "orders"}
        assert parsed.query.n_relations == 2

    def test_pk_fk_detection_and_selectivity(self, tpch_catalog):
        sql = "select 1 from lineitem, orders where lineitem.l_orderkey = orders.o_orderkey"
        query = parse_join_query(sql, tpch_catalog).query
        edge = query.graph.edges[0]
        assert edge.is_pk_fk
        assert edge.selectivity == pytest.approx(1.0 / 1_500_000)

    def test_filter_predicates_scale_cardinality(self, tpch_catalog):
        sql = ("select 1 from lineitem, orders "
               "where lineitem.l_orderkey = orders.o_orderkey and orders.o_orderkey = 42")
        parsed = parse_join_query(sql, tpch_catalog)
        orders_index = parsed.query.graph.relation_names.index("orders")
        assert parsed.query.cardinality.base_rows(orders_index) == pytest.approx(1.0)
        assert parsed.filter_predicates == ["orders.o_orderkey = 42"]

    def test_range_and_like_filters(self, tpch_catalog):
        sql = ("select 1 from lineitem, orders "
               "where lineitem.l_orderkey = orders.o_orderkey "
               "and orders.o_comment like '%fast%' and lineitem.l_qty < 5")
        parsed = parse_join_query(sql, tpch_catalog)
        assert len(parsed.filter_predicates) == 2

    def test_query_without_where(self, tpch_catalog):
        parsed = parse_join_query("select 1 from lineitem", tpch_catalog)
        assert parsed.query.n_relations == 1
        assert parsed.join_predicates == []


class TestErrors:
    def test_unknown_table(self, tpch_catalog):
        with pytest.raises(SQLParseError):
            parse_join_query("select 1 from nation", tpch_catalog)

    def test_unknown_alias_in_predicate(self, tpch_catalog):
        with pytest.raises(SQLParseError):
            parse_join_query(
                "select 1 from lineitem where x.l_orderkey = lineitem.l_orderkey",
                tpch_catalog)

    def test_missing_from(self, tpch_catalog):
        with pytest.raises(SQLParseError):
            parse_join_query("select 1", tpch_catalog)

    def test_or_predicates_rejected(self, tpch_catalog):
        with pytest.raises(SQLParseError):
            parse_join_query(
                "select 1 from lineitem, orders where lineitem.l_orderkey = orders.o_orderkey "
                "or orders.o_orderkey = 3", tpch_catalog)

    def test_explicit_join_syntax_rejected(self, tpch_catalog):
        with pytest.raises(SQLParseError):
            parse_join_query(
                "select 1 from lineitem join orders on lineitem.l_orderkey = orders.o_orderkey",
                tpch_catalog)

    def test_duplicate_alias_rejected(self, tpch_catalog):
        with pytest.raises(SQLParseError):
            parse_join_query("select 1 from lineitem l, orders l", tpch_catalog)

    def test_self_join_predicate_rejected(self, tpch_catalog):
        with pytest.raises(SQLParseError):
            parse_join_query(
                "select 1 from lineitem where lineitem.l_orderkey = lineitem.l_partkey",
                tpch_catalog)

    def test_unsupported_predicate_shape(self, tpch_catalog):
        with pytest.raises(SQLParseError):
            parse_join_query(
                "select 1 from lineitem, orders where lower(lineitem.x) = orders.o_orderkey",
                tpch_catalog)
