"""Golden-plan snapshots: pinned plans/costs for the paper's workloads.

The equivalence suites (``test_exec_backends``, ``test_multicore_backend``,
the differential fuzzer) are *self*-consistency checks — every backend
against the scalar reference of the same commit.  They cannot catch a
refactor that changes what the scalar reference itself produces.  This
suite pins the fig04/06-09 workloads' optimal plans to files committed
under ``tests/golden/``: canonical plan strings, exact costs (both repr and
IEEE-754 hex, so "looks equal" never masks a last-bit drift), and the
EvaluatedCounter / CCP-Counter pair the figures are computed from.

After an *intentional* plan-affecting change (new cost model defaults, new
workload statistics), regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden_plans.py --update-golden

and review the diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.heuristics import IDP2
from repro.optimizers import MPDP
from repro.workloads import (
    chain_query,
    clique_query,
    musicbrainz_query,
    snowflake_query,
    star_query,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

WORKLOAD_FACTORIES = {
    "fig04_star_n10_seed1": lambda: star_query(10, seed=1),
    "fig06_star_n10_seed0": lambda: star_query(10, seed=0),
    "fig07_snowflake_n12_seed0": lambda: snowflake_query(12, seed=0),
    "fig08_clique_n9_seed0": lambda: clique_query(9, seed=0),
    "fig09_musicbrainz_n13_seed0": lambda: musicbrainz_query(13, seed=0),
    # Wide (> 62-relation) workloads: masks span multiple uint64 words on
    # the kernel backends, so these pin the reference plans the multi-word
    # columns must keep reproducing.  Exact MPDP stays on chains (O(n^2)
    # connected intervals; cycles blow up exponentially under the block
    # enumeration), with n = 65 sitting right past the one-lane boundary;
    # the snowflake is pinned under the IDP2 fragment ladder the
    # large-query band runs.
    "wide_chain_n65_seed1": lambda: chain_query(65, seed=1),
    "wide_chain_n100_seed1": lambda: chain_query(100, seed=1),
    "wide_snowflake_n100_seed1": lambda: snowflake_query(100, seed=1),
}

#: Per-workload optimizer override (default: exact MPDP on the scalar
#: reference backend).  The wide snowflake would be intractable for exact
#: DP, so it pins the scalar IDP2 ladder instead.
DRIVER_FACTORIES = {
    "wide_snowflake_n100_seed1": lambda: IDP2(k=8, backend="scalar"),
}


def snapshot_of(workload: str) -> dict:
    """The canonical snapshot record for one workload."""
    query = WORKLOAD_FACTORIES[workload]()
    make_driver = DRIVER_FACTORIES.get(
        workload, lambda: MPDP(backend="scalar"))
    result = make_driver().optimize(query)
    result.plan.validate()
    return {
        "workload": workload,
        "algorithm": result.stats.algorithm,
        "n_relations": query.n_relations,
        "cost_model": query.cost_model.name,
        "cost": repr(result.cost),
        "cost_hex": float(result.cost).hex(),
        "rows": repr(result.plan.rows),
        "evaluated_pairs": result.stats.evaluated_pairs,
        "ccp_pairs": result.stats.ccp_pairs,
        "memo_entries": result.stats.memo_entries,
        "plan": result.plan.to_string(query.graph.relation_names),
    }


def golden_path(workload: str) -> Path:
    return GOLDEN_DIR / f"{workload}.json"


@pytest.fixture
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


@pytest.mark.parametrize("workload", sorted(WORKLOAD_FACTORIES))
def test_golden_plan(workload, update_golden):
    snapshot = snapshot_of(workload)
    path = golden_path(workload)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2) + "\n")
        return
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        "pytest tests/test_golden_plans.py --update-golden")
    pinned = json.loads(path.read_text())
    assert snapshot == pinned, (
        f"{workload}: current optimizer output diverges from the pinned "
        f"golden plan; if the change is intentional, regenerate with "
        "--update-golden and review the diff")


# --------------------------------------------------------------------- #
# Golden *execution* snapshots: pinned runtime row counts
# --------------------------------------------------------------------- #
#: The figure workloads small enough to execute (the wide_* graphs would
#: need thousands of joined tables); datasets are scaled to stay fast.
EXEC_WORKLOADS = (
    "fig04_star_n10_seed1",
    "fig06_star_n10_seed0",
    "fig07_snowflake_n12_seed0",
    "fig08_clique_n9_seed0",
    "fig09_musicbrainz_n13_seed0",
)

#: Tables are pinned to one equal width (``min_rows == max_rows``): with
#: mixed widths a tiny scaled primary-key table under a large foreign-key
#: table fans probes out multiplicatively, and the fig07 snowflake then
#: materializes a ~7e7-row result (a minute of runtime in a tier-1 test).
#: Equal widths keep PK-FK joins flat at the table width; EXEC_SCALE
#: still sizes the shared domains of non-PK-FK edges.  The clique's width
#: is smaller because every pair is a weak edge.
EXEC_SCALE = 1e-4
EXEC_ROWS = 200
EXEC_CLIQUE_ROWS = 25
EXEC_DATASET_SEED = 0


def exec_snapshot_of(workload: str) -> dict:
    """Pinned row counts from actually running the workload's optimal plan.

    The plan-shape snapshot above pins what the optimizer *says*; this pins
    what the executor *does* — the final result cardinality and every
    join node's output rows on the deterministic synthetic dataset.  A
    drift here without a plan drift means the execution engine (or the
    dataset generator) changed behaviour.
    """
    from repro.execution import InMemoryExecutor, SyntheticDataset

    query = WORKLOAD_FACTORIES[workload]()
    plan = MPDP(backend="scalar").optimize(query).plan
    rows = EXEC_CLIQUE_ROWS if "clique" in workload else EXEC_ROWS
    dataset = SyntheticDataset(query, scale=EXEC_SCALE, max_rows=rows,
                               min_rows=rows, seed=EXEC_DATASET_SEED)
    result = InMemoryExecutor(dataset).execute(plan)
    join_rows = {
        format(node.relations, "b"): node.rows
        for node in result.stats.iter_nodes()
        if node.children
    }
    return {
        "workload": workload,
        "scale": EXEC_SCALE,
        "rows_per_table": rows,
        "dataset_seed": EXEC_DATASET_SEED,
        "table_rows": [len(next(iter(dataset.columns[rel].values())))
                       for rel in range(query.n_relations)],
        "result_rows": result.rows,
        "join_rows": join_rows,
    }


def exec_golden_path(workload: str) -> Path:
    return GOLDEN_DIR / f"exec_{workload}.json"


@pytest.mark.parametrize("workload", EXEC_WORKLOADS)
def test_golden_execution(workload, update_golden):
    snapshot = exec_snapshot_of(workload)
    path = exec_golden_path(workload)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2) + "\n")
        return
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        "pytest tests/test_golden_plans.py --update-golden")
    pinned = json.loads(path.read_text())
    assert snapshot == pinned, (
        f"{workload}: executed row counts diverge from the pinned golden "
        f"execution snapshot; if the change is intentional, regenerate "
        "with --update-golden and review the diff")


def test_no_stale_golden_files():
    """Every committed golden file corresponds to a current workload."""
    if not GOLDEN_DIR.exists():
        pytest.skip("golden directory not generated yet")
    expected = set(WORKLOAD_FACTORIES) | {
        f"exec_{workload}" for workload in EXEC_WORKLOADS}
    stale = {p.stem for p in GOLDEN_DIR.glob("*.json")} - expected
    assert not stale, f"golden files without a workload: {sorted(stale)}"
